// cepic-lint — the config-aware machine-code verifier as a tool: prove
// statically that scheduled EPIC programs respect the architectural
// contract of a processor configuration (docs/LINT.md documents every
// rule with its paper grounding).
//
//   cepic-lint [input ...] [options]
//
// Binary CEPX containers are detected by their magic bytes (regardless
// of file name) and checked against the configuration embedded in them
// (--config/--grid do not apply: the bundles were laid out for exactly
// that configuration). Text inputs are classified by extension:
//   *.mc    MiniC source — compiled through the shared pipeline::Service
//           (so `--cache DIR` reuses artifacts and lint reports across
//           runs and tools), then checked for every configuration
//   *.s     assembly text — assembled for every configuration, then
//           checked (an assembly-time rejection is reported as a
//           finding for that configuration)
//
//   --workloads    also lint the four built-in paper workloads
//                  (SHA-256, AES-128, DCT, Dijkstra)
//   --ir           also run the IR-level lint (ir.* rules: use-before-
//                  def, dead stores, unreachable blocks, always-false
//                  guards, constant branches, out-of-bounds global
//                  accesses) over MiniC inputs. Config-independent:
//                  one report per input, cached in the store at the
//                  IR-lint granularity
//   --predict      attach the static cycle prediction (exact SimStats
//                  on statically-resolved programs, a stall-model bound
//                  otherwise — docs/ANALYSIS.md) to every check
//   --config FILE  base processor configuration
//   --grid SPEC    check across a configuration grid, e.g.
//                  alus=1..4,forwarding=0,1 (cepic-explore grammar);
//                  invalid points are skipped with a note
//   --Werror       exit non-zero on warnings (port-budget, latency)
//                  as well as errors
//   --json         machine-readable report on stdout
//   --cache DIR    persistent compile store shared with cepic-cc etc.
//   --cache-stats  report store hits/misses to stderr
//   --jobs N       worker threads for compilation
//
// Exit status: 0 every check clean, 1 any finding (or any input that
// failed to compile/assemble/load), 2 usage error.
#include "tool_common.hpp"

#include <iostream>
#include <string>
#include <vector>

#include "analysis/irlint.hpp"
#include "analysis/static_cycles.hpp"
#include "asmtool/assembler.hpp"
#include "core/custom.hpp"
#include "core/program.hpp"
#include "explore/sweep.hpp"
#include "mcheck/mcheck.hpp"
#include "workloads/workloads.hpp"

namespace {

enum class InputKind { kMinic, kAsm, kProgram };

struct Input {
  std::string name;
  InputKind kind;
  std::string text;                 ///< MiniC or assembly text
  std::vector<std::uint8_t> bytes;  ///< CEPX container
};

/// Binary containers announce themselves via magic bytes; text inputs
/// fall back to the extension.
InputKind classify(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  if (cepic::serial::looks_like_cepx(bytes)) return InputKind::kProgram;
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".s" || ext == ".asm") return InputKind::kAsm;
  return InputKind::kMinic;
}

/// One (input, configuration) check: either a report or a failure to
/// produce a Program at all. `--ir` rows carry an IR-level LintReport
/// instead of an mcheck one; `--predict` attaches a cycle prediction.
struct CheckOutcome {
  std::string input;
  std::string config;
  cepic::mcheck::Report report;
  std::string error;  ///< non-empty: compile/assemble/load failed

  bool is_ir = false;  ///< IR-lint row: `ir_report` is the payload
  cepic::analysis::LintReport ir_report;

  bool has_predict = false;
  cepic::analysis::StaticCycleReport predict;

  std::size_t error_count() const {
    return is_ir ? ir_report.error_count() : report.error_count();
  }
  std::size_t warning_count() const {
    return is_ir ? ir_report.warning_count() : report.warning_count();
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-lint", [&]() -> int {
    std::string config_path;
    std::string grid;
    bool use_workloads = false;
    bool ir_lint = false;
    bool predict = false;
    bool werror = false;
    bool json = false;
    bool cache_stats = false;
    pipeline::Options popts;

    tools::OptionTable table("cepic-lint [input ...] [options]");
    tools::add_config_option(table, &config_path);
    table.str("--grid", "SPEC",
              "check across a config grid, e.g. alus=1..4", &grid);
    table.flag("--workloads", "also lint the four built-in paper workloads",
               &use_workloads);
    table.flag("--ir", "also run the IR-level lint over MiniC inputs",
               &ir_lint);
    table.flag("--predict", "attach the static cycle prediction to each check",
               &predict);
    table.flag("--Werror", "treat warnings as errors", &werror);
    table.flag("--json", "machine-readable report on stdout", &json);
    tools::add_jobs_option(table, &popts.jobs);
    tools::add_cache_options(table, &popts.store_dir, &cache_stats);
    tools::ObsOptions obs_opts;
    tools::add_obs_options(table, &obs_opts);

    std::vector<std::string> paths;
    if (!table.parse(argc, argv, paths)) return 2;
    if (paths.empty() && !use_workloads) return table.usage();
    tools::obs_begin(obs_opts);

    std::vector<Input> inputs;
    for (const std::string& path : paths) {
      Input in;
      in.name = path;
      in.bytes = tools::read_binary(path);
      in.kind = classify(path, in.bytes);
      if (in.kind != InputKind::kProgram) {
        in.text.assign(in.bytes.begin(), in.bytes.end());
        in.bytes.clear();
      }
      inputs.push_back(std::move(in));
    }
    if (use_workloads) {
      for (const workloads::Workload& w : workloads::all_workloads(8, 2, 8, 6)) {
        Input in;
        in.name = cat("workload:", w.name);
        in.kind = InputKind::kMinic;
        in.text = w.minic_source;
        inputs.push_back(std::move(in));
      }
    }

    const ProcessorConfig base = tools::load_config(config_path);
    std::vector<ProcessorConfig> configs;
    if (grid.empty()) {
      base.validate();
      configs.push_back(base);
    } else {
      explore::SweepSpec spec = explore::SweepSpec::from_grid(grid, base);
      const std::size_t dropped = spec.filter_invalid();
      if (dropped != 0) {
        std::cerr << "note: " << dropped
                  << " grid point(s) invalid, skipped\n";
      }
      if (spec.empty()) {
        std::cerr << "error: grid `" << grid << "` has no valid points\n";
        return 1;
      }
      configs = std::move(spec.points);
    }

    pipeline::Service service(popts);
    const mcheck::CheckOptions copts{werror};

    const auto attach_predict = [&](CheckOutcome& out,
                                    const Program& program) {
      if (!predict) return;
      out.has_predict = true;
      out.predict = analysis::predict_cycles(
          program, CustomOpTable::for_names(program.config.custom_ops));
    };

    std::vector<CheckOutcome> outcomes;
    for (const Input& in : inputs) {
      if (in.kind == InputKind::kProgram) {
        CheckOutcome out;
        out.input = in.name;
        try {
          const Program program = serial::decode_program(in.bytes);
          out.config = program.config.summary();
          out.report = mcheck::check_program(program, copts);
          attach_predict(out, program);
        } catch (const Error& e) {
          out.error = e.what();
        }
        outcomes.push_back(std::move(out));
        continue;
      }
      if (ir_lint && in.kind == InputKind::kMinic) {
        // One IR-lint row per input: the report is config-independent
        // (and store-cached at the IR-lint granularity).
        CheckOutcome out;
        out.input = in.name;
        out.config = "ir";
        out.is_ir = true;
        try {
          out.ir_report = service.lint_ir(in.text, werror);
        } catch (const Error& e) {
          out.error = e.what();
        }
        outcomes.push_back(std::move(out));
      }
      for (const ProcessorConfig& config : configs) {
        CheckOutcome out;
        out.input = in.name;
        out.config = config.summary();
        try {
          const Program program =
              in.kind == InputKind::kMinic
                  ? service.compile_program(in.text, config)
                  : asmtool::assemble(in.text, config);
          out.report = mcheck::check_program(program, copts);
          attach_predict(out, program);
        } catch (const Error& e) {
          out.error = e.what();
        }
        outcomes.push_back(std::move(out));
      }
    }

    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t failed_inputs = 0;
    for (const CheckOutcome& out : outcomes) {
      if (!out.error.empty()) {
        ++failed_inputs;
        continue;
      }
      errors += out.error_count();
      warnings += out.warning_count();
    }

    if (json) {
      std::string text = "[";
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const CheckOutcome& out = outcomes[i];
        if (i != 0) text += ",";
        if (!out.error.empty()) {
          text += cat("{\"input\":\"", out.input, "\",\"config\":\"",
                      out.config, "\",\"error\":\"", out.error, "\"}");
        } else {
          text += cat("{\"input\":\"", out.input, "\",\"config\":\"",
                      out.config, "\",\"report\":",
                      out.is_ir ? out.ir_report.to_json()
                                : out.report.to_json());
          if (out.has_predict) {
            text += cat(",\"predict\":", out.predict.to_json());
          }
          text += "}";
        }
      }
      text += "]\n";
      std::cout << text;
    } else {
      for (const CheckOutcome& out : outcomes) {
        const std::string head = cat(out.input, " [", out.config, "]");
        const bool clean =
            out.is_ir ? out.ir_report.diags.empty() : out.report.diags.empty();
        if (!out.error.empty()) {
          std::cout << head << ": error: " << out.error << "\n";
        } else if (clean) {
          std::cout << head << ": clean\n";
        } else if (out.is_ir) {
          std::cout << head << ":\n" << out.ir_report.to_text();
        } else {
          std::cout << head << ":\n" << out.report.to_text();
        }
        if (out.has_predict) std::cout << out.predict.to_string();
      }
      std::cout << "cepic-lint: " << outcomes.size() << " check(s), "
                << errors << " error(s), " << warnings << " warning(s)";
      if (failed_inputs != 0) {
        std::cout << ", " << failed_inputs << " input(s) failed to build";
      }
      std::cout << "\n";
    }

    service.publish_stats();
    if (cache_stats) tools::print_cache_stats("cepic-lint", service.stats());
    tools::obs_finish(obs_opts);
    return (errors != 0 || failed_inputs != 0) ? 1 : 0;
  });
}
