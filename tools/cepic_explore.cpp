// cepic-explore — parallel design-space exploration over the user's own
// MiniC programs (the paper's intended workflow, §6): sweep processor
// customisations, compile and simulate every (program, point) pair
// through the shared pipeline::Service batch scheduler, and report
// cycles, area, frequency, wall-clock time and power, with
// Pareto-frontier marking and CSV/JSON export.
//
//   cepic-explore prog.mc [more.mc ...] [options]
//     --grid SPEC    sweep dimensions, e.g. alus=1..4,width=1..4,ports=4,8
//                    (default: alus=1..4)
//     --config FILE  base processor configuration the grid varies
//     --pipeline     also sweep pipeline stages 2..3 (legacy flag)
//     --jobs N       worker threads; 0 = all hardware threads (default 1)
//     --cache DIR    persistent compile store: points differing only in
//                    simulation-visible parameters share one compiled
//                    program, and artifacts + simulation results are
//                    reused across runs and tools
//     --cache-stats  report store hits/misses per granularity to stderr
//     --csv FILE     write the result table as CSV ("-" = stdout); with
//                    several sources, source i writes FILE.i
//     --json FILE    write the result table as JSON (same convention)
//     --pareto       print only Pareto-optimal points (cycles x slices
//                    x power)
//
// Output is byte-identical for any --jobs value and any cache
// temperature: results are ordered by grid position, never by
// completion time, and cached results replay the stored outcome.
#include "tool_common.hpp"

#include <algorithm>

#include "explore/explore.hpp"

namespace {

void write_file_or_stdout(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  cepic::tools::write_file(path, text);
}

/// Export path for source `w`: the path itself for a single source,
/// `path.<w>` for several ("-" always appends to stdout in order).
std::string export_path(const std::string& path, std::size_t w,
                        std::size_t sources) {
  if (path == "-" || sources == 1) return path;
  return cepic::cat(path, ".", w);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-explore", [&]() -> int {
    std::string grid;
    std::string config_path;
    std::string csv_path;
    std::string json_path;
    bool sweep_pipeline = false;
    bool pareto_only = false;
    bool cache_stats = false;
    explore::ExploreOptions options;

    tools::OptionTable table(
        "cepic-explore <prog.mc> [more.mc ...] [options]");
    table.str("--grid", "SPEC",
              "sweep dimensions, e.g. alus=1..4,ports=4,8", &grid);
    tools::add_config_option(table, &config_path);
    table.flag("--pipeline", "also sweep pipeline stages 2..3",
               &sweep_pipeline);
    tools::add_jobs_option(table, &options.jobs);
    tools::add_cache_options(table, &options.store_dir, &cache_stats);
    table.str("--csv", "FILE", "write the result table as CSV (\"-\" = stdout)",
              &csv_path);
    table.str("--json", "FILE",
              "write the result table as JSON (\"-\" = stdout)", &json_path);
    table.flag("--pareto", "print only Pareto-optimal points", &pareto_only);
    tools::ObsOptions obs_opts;
    tools::add_obs_options(table, &obs_opts);

    std::vector<std::string> paths;
    if (!table.parse(argc, argv, paths)) return 2;
    if (paths.empty()) return table.usage();
    tools::obs_begin(obs_opts);

    std::vector<std::string> sources;
    sources.reserve(paths.size());
    for (const std::string& path : paths) {
      sources.push_back(tools::read_file(path));
    }
    const ProcessorConfig base = tools::load_config(config_path);

    if (grid.empty()) {
      grid = sweep_pipeline ? "alus=1..4,stages=2..3" : "alus=1..4";
    } else if (sweep_pipeline) {
      grid += ",stages=2..3";
    }
    explore::SweepSpec spec = explore::SweepSpec::from_grid(grid, base);
    const std::size_t dropped = spec.filter_invalid();
    if (dropped != 0) {
      std::cerr << "note: " << dropped
                << " grid point(s) invalid, skipped\n";
    }
    if (spec.empty()) {
      std::cerr << "error: grid `" << grid << "` has no valid points\n";
      return 1;
    }

    const explore::SweepBatch batch =
        explore::run_sweep_batch(sources, spec, options);

    // When an export goes to stdout, the human table would corrupt it.
    const bool print_table = csv_path != "-" && json_path != "-";
    bool any_ok = false;
    std::size_t cache_hits = 0;
    std::size_t total_points = 0;
    for (std::size_t w = 0; w < batch.sweeps.size(); ++w) {
      const explore::SweepResult& result = batch.sweeps[w];
      cache_hits += result.cache_hits;
      total_points += result.points.size();
      if (print_table) {
        if (batch.sweeps.size() > 1) {
          std::cout << (w == 0 ? "" : "\n") << "== " << paths[w] << " ==\n";
        }
        std::cout << pad_right("configuration", 26) << pad_left("cycles", 10)
                  << pad_left("slices", 9) << pad_left("fmax", 9)
                  << pad_left("time(ms)", 10) << pad_left("power", 9)
                  << "  pareto\n";
        const auto frontier = result.pareto_indices();
        for (std::size_t i = 0; i < result.points.size(); ++i) {
          const explore::PointResult& p = result.points[i];
          if (!p.ok) {
            std::cout << pad_right(p.config.summary(), 26) << "  error: "
                      << p.error << "\n";
            continue;
          }
          const bool pareto =
              std::binary_search(frontier.begin(), frontier.end(), i);
          if (pareto_only && !pareto) continue;
          std::cout << pad_right(p.config.summary(), 26)
                    << pad_left(cat(p.cycles), 10)
                    << pad_left(fixed(p.slices, 0), 9)
                    << pad_left(fixed(p.fmax_mhz, 1), 9)
                    << pad_left(fixed(p.time_ms, 3), 10)
                    << pad_left(cat(fixed(p.power_mw, 0), " mW"), 9)
                    << (pareto ? "  *" : "") << "\n";
        }
      }
      if (!csv_path.empty()) {
        write_file_or_stdout(export_path(csv_path, w, batch.sweeps.size()),
                             result.to_csv());
      }
      if (!json_path.empty()) {
        write_file_or_stdout(export_path(json_path, w, batch.sweeps.size()),
                             result.to_json());
      }
      any_ok = any_ok ||
               std::any_of(result.points.begin(), result.points.end(),
                           [](const auto& p) { return p.ok; });
    }
    pipeline::publish_stats(batch.stats);
    obs::Registry::instance().set_counter("explore.points_total",
                                          total_points);
    obs::Registry::instance().set_counter("explore.points_from_result_cache",
                                          cache_hits);
    if (cache_stats) tools::print_cache_stats("cepic-explore", batch.stats);
    tools::obs_finish(obs_opts);
    return any_ok ? 0 : 1;
  });
}
