// cepic-explore — parallel design-space exploration over a user's own
// MiniC program (the paper's intended workflow, §6): sweep processor
// customisations, compile and simulate every point on a thread pool,
// and report cycles, area, frequency, wall-clock time and power, with
// Pareto-frontier marking and CSV/JSON export.
//
//   cepic-explore prog.mc [options]
//     --grid SPEC    sweep dimensions, e.g. alus=1..4,width=1..4,ports=4,8
//                    (default: alus=1..4)
//     --pipeline     also sweep pipeline stages 2..3 (legacy flag)
//     --jobs N       worker threads; 0 = all hardware threads (default 1)
//     --cache FILE   on-disk result cache (repeated points become free)
//     --csv FILE     write the full result table as CSV ("-" = stdout)
//     --json FILE    write the full result table as JSON ("-" = stdout)
//     --pareto       print only Pareto-optimal points (cycles x slices
//                    x power)
//
// Output is byte-identical for any --jobs value: results are ordered by
// grid position, never by completion time.
#include "tool_common.hpp"

#include <algorithm>

#include "explore/explore.hpp"
#include "support/text.hpp"

namespace {

void write_file_or_stdout(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  cepic::tools::write_file(path, text);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-explore", [&]() -> int {
    std::string path;
    std::string grid;
    std::string csv_path;
    std::string json_path;
    bool sweep_pipeline = false;
    bool pareto_only = false;
    explore::ExploreOptions options;

    const auto usage = [] {
      std::cerr << "usage: cepic-explore <prog.mc> [--grid SPEC] [--jobs N]"
                   " [--cache FILE]\n"
                   "                     [--csv FILE] [--json FILE]"
                   " [--pareto] [--pipeline]\n";
      return 2;
    };
    const auto next_arg = [&](int& i) -> std::string {
      if (i + 1 >= argc) throw Error(cat(argv[i], " needs a value"));
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--pipeline") {
        sweep_pipeline = true;
      } else if (arg == "--pareto") {
        pareto_only = true;
      } else if (arg == "--grid") {
        grid = next_arg(i);
      } else if (arg == "--jobs") {
        std::int64_t v = 0;
        if (!parse_int(next_arg(i), v) || v < 0) {
          throw Error("--jobs needs a non-negative integer");
        }
        options.jobs = static_cast<unsigned>(v);
      } else if (arg == "--cache") {
        options.cache_file = next_arg(i);
      } else if (arg == "--csv") {
        csv_path = next_arg(i);
      } else if (arg == "--json") {
        json_path = next_arg(i);
      } else if (arg[0] == '-' && arg != "-") {
        return usage();
      } else {
        path = arg;
      }
    }
    if (path.empty()) return usage();
    const std::string source = tools::read_file(path);

    if (grid.empty()) {
      grid = sweep_pipeline ? "alus=1..4,stages=2..3" : "alus=1..4";
    } else if (sweep_pipeline) {
      grid += ",stages=2..3";
    }
    explore::SweepSpec spec = explore::SweepSpec::from_grid(grid);
    const std::size_t dropped = spec.filter_invalid();
    if (dropped != 0) {
      std::cerr << "note: " << dropped
                << " grid point(s) invalid, skipped\n";
    }
    if (spec.empty()) {
      std::cerr << "error: grid `" << grid << "` has no valid points\n";
      return 1;
    }

    const explore::SweepResult result =
        explore::run_sweep(source, spec, options);

    // When an export goes to stdout, the human table would corrupt it.
    if (csv_path != "-" && json_path != "-") {
      std::cout << pad_right("configuration", 26) << pad_left("cycles", 10)
                << pad_left("slices", 9) << pad_left("fmax", 9)
                << pad_left("time(ms)", 10) << pad_left("power", 9)
                << "  pareto\n";
      const auto frontier = result.pareto_indices();
      for (std::size_t i = 0; i < result.points.size(); ++i) {
        const explore::PointResult& p = result.points[i];
        if (!p.ok) {
          std::cout << pad_right(p.config.summary(), 26) << "  error: "
                    << p.error << "\n";
          continue;
        }
        const bool pareto =
            std::binary_search(frontier.begin(), frontier.end(), i);
        if (pareto_only && !pareto) continue;
        std::cout << pad_right(p.config.summary(), 26)
                  << pad_left(cat(p.cycles), 10)
                  << pad_left(fixed(p.slices, 0), 9)
                  << pad_left(fixed(p.fmax_mhz, 1), 9)
                  << pad_left(fixed(p.time_ms, 3), 10)
                  << pad_left(cat(fixed(p.power_mw, 0), " mW"), 9)
                  << (pareto ? "  *" : "") << "\n";
      }
    }
    if (result.cache_hits != 0) {
      std::cerr << "cache: " << result.cache_hits << "/"
                << result.points.size() << " points served from "
                << options.cache_file << "\n";
    }

    if (!csv_path.empty()) write_file_or_stdout(csv_path, result.to_csv());
    if (!json_path.empty()) write_file_or_stdout(json_path, result.to_json());
    const bool any_ok = std::any_of(result.points.begin(), result.points.end(),
                                    [](const auto& p) { return p.ok; });
    return any_ok ? 0 : 1;
  });
}
