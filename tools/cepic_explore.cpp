// cepic-explore — design-space exploration over a user's own MiniC
// program: sweeps ALU count (and optionally pipeline depth) and reports
// cycles, area, frequency, wall-clock time and power for each
// customisation, the paper's intended workflow for its platform.
//
//   cepic-explore prog.mc [--pipeline]
#include "tool_common.hpp"

#include "driver/driver.hpp"
#include "fpga/model.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-explore", [&]() -> int {
    std::string path;
    bool sweep_pipeline = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--pipeline") {
        sweep_pipeline = true;
      } else if (arg[0] == '-') {
        std::cerr << "usage: cepic-explore <prog.mc> [--pipeline]\n";
        return 2;
      } else {
        path = arg;
      }
    }
    if (path.empty()) {
      std::cerr << "usage: cepic-explore <prog.mc> [--pipeline]\n";
      return 2;
    }
    const std::string source = tools::read_file(path);

    std::cout << pad_right("configuration", 24) << pad_left("cycles", 10)
              << pad_left("slices", 9) << pad_left("fmax", 9)
              << pad_left("time(ms)", 10) << pad_left("power", 9) << "\n";
    for (unsigned alus : {1u, 2u, 3u, 4u}) {
      for (unsigned stages : sweep_pipeline
                                 ? std::vector<unsigned>{2u, 3u}
                                 : std::vector<unsigned>{2u}) {
        ProcessorConfig cfg;
        cfg.num_alus = alus;
        cfg.pipeline_stages = stages;
        EpicSimulator sim = driver::run_minic_on_epic(source, cfg);
        const auto area = fpga::estimate(cfg);
        const double ms =
            static_cast<double>(sim.stats().cycles) / (area.fmax_mhz * 1e3);
        std::cout << pad_right(cat(alus, " ALU / ", stages, "-stage"), 24)
                  << pad_left(cat(sim.stats().cycles), 10)
                  << pad_left(fixed(area.slices, 0), 9)
                  << pad_left(fixed(area.fmax_mhz, 1), 9)
                  << pad_left(fixed(ms, 3), 10)
                  << pad_left(cat(fixed(fpga::estimate_power(area).total(), 0),
                                  " mW"),
                              9)
                  << "\n";
      }
    }
    return 0;
  });
}
