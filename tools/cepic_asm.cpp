// cepic-asm — the configuration-driven assembler as a standalone tool
// (paper §4.2). Re-targeting needs only a different configuration file;
// the tool itself is never recompiled.
//
//   cepic-asm prog.s -o prog.cepx [--config cpu.cfg]
#include "tool_common.hpp"

#include "asmtool/assembler.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-asm", [&]() -> int {
    std::string source_path;
    std::string out_path = "out.cepx";
    std::string config_path;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "-o") {
        out_path = next();
      } else if (arg == "--config") {
        config_path = next();
      } else if (arg[0] == '-') {
        std::cerr << "usage: cepic-asm <prog.s> [-o out.cepx] "
                     "[--config cpu.cfg]\n";
        return 2;
      } else {
        source_path = arg;
      }
    }
    if (source_path.empty()) {
      std::cerr << "usage: cepic-asm <prog.s> [-o out.cepx] "
                   "[--config cpu.cfg]\n";
      return 2;
    }
    const Program program = asmtool::assemble(
        tools::read_file(source_path), tools::load_config(config_path));
    tools::write_binary(out_path, program.serialize());
    std::cout << program.bundle_count() << " MultiOps, "
              << program.data.size() << " data bytes -> " << out_path
              << "\n";
    return 0;
  });
}
