// cepic-asm — the configuration-driven assembler as a standalone tool
// (paper §4.2). Re-targeting needs only a different configuration file;
// the tool itself is never recompiled.
//
//   cepic-asm prog.s -o prog.cepx [--config cpu.cfg]
#include "tool_common.hpp"

#include "asmtool/assembler.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-asm", [&]() -> int {
    std::string out_path = "out.cepx";
    std::string config_path;

    tools::OptionTable table("cepic-asm <prog.s> [options]");
    table.str("-o", "FILE", "output path (default: out.cepx)", &out_path);
    tools::add_config_option(table, &config_path);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();

    const Program program =
        asmtool::assemble(tools::read_file(positionals.front()),
                          tools::load_config(config_path));
    tools::write_binary(out_path, serial::encode_program(program));
    std::cout << program.bundle_count() << " MultiOps, "
              << program.data.size() << " data bytes -> " << out_path
              << "\n";
    return 0;
  });
}
