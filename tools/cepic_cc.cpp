// cepic-cc — the CEPIC compiler driver: MiniC source in, EPIC assembly
// or CEPX machine code out, for any processor customisation given as a
// configuration file (paper §4).
//
//   cepic-cc prog.mc -o prog.cepx [--config cpu.cfg]
//   cepic-cc prog.mc --emit-asm -o prog.s
//   cepic-cc prog.mc --emit-ir              # optimised IR to stdout
//   cepic-cc prog.mc --no-opt --emit-asm    # skip the optimiser
//   cepic-cc prog.mc --candidates           # custom-instruction mining
#include "tool_common.hpp"

#include "driver/driver.hpp"
#include "frontend/irgen.hpp"
#include "opt/custom_candidates.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: cepic-cc <source.mc> [options]\n"
      "  -o <file>        output path (default: out.cepx / out.s)\n"
      "  --config <file>  processor configuration file\n"
      "  --emit-asm       emit textual assembly instead of a binary\n"
      "  --emit-ir        print the (optimised) IR and stop\n"
      "  --no-opt         disable the optimiser\n"
      "  --no-schedule    one operation per MultiOp (debugging)\n"
      "  --candidates     print custom-instruction candidates and stop\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-cc", [&]() -> int {
    std::string source_path;
    std::string out_path;
    std::string config_path;
    bool emit_asm = false;
    bool emit_ir = false;
    bool candidates = false;
    driver::EpicCompileOptions options;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "-o") {
        out_path = next();
      } else if (arg == "--config") {
        config_path = next();
      } else if (arg == "--emit-asm") {
        emit_asm = true;
      } else if (arg == "--emit-ir") {
        emit_ir = true;
      } else if (arg == "--no-opt") {
        options.optimize = false;
      } else if (arg == "--no-schedule") {
        options.backend.schedule = false;
      } else if (arg == "--candidates") {
        candidates = true;
      } else if (arg == "--help" || arg[0] == '-') {
        return usage();
      } else if (source_path.empty()) {
        source_path = arg;
      } else {
        return usage();
      }
    }
    if (source_path.empty()) return usage();

    const std::string source = tools::read_file(source_path);
    const ProcessorConfig config = tools::load_config(config_path);

    if (emit_ir || candidates) {
      ir::Module module = minic::compile_to_ir(source);
      if (options.optimize) opt::optimize(module, options.opt);
      if (candidates) {
        std::cout << opt::format_candidates(
            opt::find_custom_candidates(module));
      } else {
        std::cout << ir::to_string(module);
      }
      return 0;
    }

    const driver::EpicCompileResult result =
        driver::compile_minic_to_epic(source, config, options);
    if (emit_asm) {
      tools::write_file(out_path.empty() ? "out.s" : out_path,
                        result.asm_text);
    } else {
      tools::write_binary(out_path.empty() ? "out.cepx" : out_path,
                          result.program.serialize());
    }
    return 0;
  });
}
