// cepic-cc — the CEPIC compiler driver: MiniC source in, EPIC assembly
// or CEPX machine code out, for any processor customisation given as a
// configuration file (paper §4). Compilation goes through
// pipeline::Service, so pointing `--cache` at a directory makes every
// artifact (optimised IR, assembly, assembled Program) persistent and
// shared with cepic-explore and later cc runs.
//
//   cepic-cc prog.mc -o prog.cepx [--config cpu.cfg]
//   cepic-cc prog.mc --emit-asm -o prog.s
//   cepic-cc prog.mc --emit-ir              # optimised IR text to stdout
//   cepic-cc prog.mc --emit-cepx -o m.cepx  # optimised IR, binary CEPX
//   cepic-cc prog.mc --no-opt --emit-asm    # skip the optimiser
//   cepic-cc prog.mc --candidates           # custom-instruction mining
//   cepic-cc prog.mc --cache .cepic-cache --cache-stats
#include "tool_common.hpp"

#include "frontend/irgen.hpp"
#include "opt/custom_candidates.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-cc", [&]() -> int {
    std::string out_path;
    std::string config_path;
    bool emit_asm = false;
    bool emit_ir = false;
    bool emit_cepx = false;
    bool candidates = false;
    bool no_opt = false;
    bool no_schedule = false;
    bool cache_stats = false;
    pipeline::Options options;

    tools::OptionTable table("cepic-cc <source.mc> [options]");
    table.str("-o", "FILE", "output path (default: out.cepx / out.s)",
              &out_path);
    tools::add_config_option(table, &config_path);
    table.flag("--emit-asm", "emit textual assembly instead of a binary",
               &emit_asm);
    table.flag("--emit-ir", "print the (optimised) IR and stop", &emit_ir);
    table.flag("--emit-cepx",
               "write the optimised IR module as a binary CEPX container",
               &emit_cepx);
    table.flag("--no-opt", "disable the optimiser", &no_opt);
    table.flag("--no-schedule", "one operation per MultiOp (debugging)",
               &no_schedule);
    table.flag("--candidates", "print custom-instruction candidates and stop",
               &candidates);
    tools::add_cache_options(table, &options.store_dir, &cache_stats);
    tools::add_jobs_option(table, &options.jobs);
    tools::ObsOptions obs_opts;
    tools::add_obs_options(table, &obs_opts);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();
    tools::obs_begin(obs_opts);

    options.codegen.optimize = !no_opt;
    options.codegen.backend.schedule = !no_schedule;

    const std::string source = tools::read_file(positionals.front());
    const ProcessorConfig config = tools::load_config(config_path);

    pipeline::Service service(options);

    if (candidates) {
      // Candidate mining wants the IR data structure, not its printout.
      std::cout << opt::format_candidates(
          opt::find_custom_candidates(service.compile_module(source)));
    } else if (emit_ir) {
      std::cout << service.compile_ir_text(source);
    } else if (emit_cepx) {
      tools::write_binary(out_path.empty() ? "out.ir.cepx" : out_path,
                          serial::encode_module(service.compile_module(source)));
    } else if (emit_asm) {
      tools::write_file(out_path.empty() ? "out.s" : out_path,
                        service.compile_asm(source, config));
    } else {
      tools::write_binary(
          out_path.empty() ? "out.cepx" : out_path,
          serial::encode_program(service.compile_program(source, config)));
    }
    service.publish_stats();
    if (cache_stats) tools::print_cache_stats("cepic-cc", service.stats());
    tools::obs_finish(obs_opts);
    return 0;
  });
}
