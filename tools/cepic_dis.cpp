// cepic-dis — disassemble a CEPX binary back to assembly.
//
//   cepic-dis prog.cepx [--config-out cpu.cfg]
#include "tool_common.hpp"

#include "asmtool/assembler.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-dis", [&]() -> int {
    std::string config_out;

    tools::OptionTable table("cepic-dis <prog.cepx> [options]");
    table.str("--config-out", "FILE",
              "write the embedded processor configuration", &config_out);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();

    const Program program =
        Program::deserialize(tools::read_binary(positionals.front()));
    std::cout << asmtool::disassemble(program);
    if (!config_out.empty()) {
      tools::write_file(config_out, program.config.to_text());
      std::cerr << "configuration written to " << config_out << "\n";
    }
    return 0;
  });
}
