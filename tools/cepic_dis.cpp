// cepic-dis — disassemble a CEPX binary back to assembly.
//
//   cepic-dis prog.cepx [--config-out cpu.cfg]
#include "tool_common.hpp"

#include "asmtool/assembler.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-dis", [&]() -> int {
    std::string path;
    std::string config_out;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--config-out") {
        if (i + 1 >= argc) throw Error("--config-out needs a value");
        config_out = argv[++i];
      } else if (arg[0] == '-') {
        std::cerr << "usage: cepic-dis <prog.cepx> [--config-out cpu.cfg]\n";
        return 2;
      } else {
        path = arg;
      }
    }
    if (path.empty()) {
      std::cerr << "usage: cepic-dis <prog.cepx> [--config-out cpu.cfg]\n";
      return 2;
    }
    const Program program = Program::deserialize(tools::read_binary(path));
    std::cout << asmtool::disassemble(program);
    if (!config_out.empty()) {
      tools::write_file(config_out, program.config.to_text());
      std::cerr << "configuration written to " << config_out << "\n";
    }
    return 0;
  });
}
