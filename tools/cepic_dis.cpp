// cepic-dis — decode any CEPX container back to its textual form. The
// payload kind is detected from the container header (magic bytes),
// never from the file name: programs disassemble to assembly, packed IR
// modules print as IR text, and configuration containers print as
// `key = value` configuration text. Truncated or corrupt containers are
// rejected with the serial layer's precise diagnostic (docs/FORMAT.md).
//
//   cepic-dis prog.cepx [--config-out cpu.cfg]
//   cepic-dis module.cepx          # IR text to stdout
//   cepic-dis cpu.cepx             # configuration text to stdout
#include "tool_common.hpp"

#include "asmtool/assembler.hpp"
#include "ir/ir.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-dis", [&]() -> int {
    std::string config_out;

    tools::OptionTable table("cepic-dis <artifact.cepx> [options]");
    table.str("--config-out", "FILE",
              "write the embedded processor configuration", &config_out);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();

    const std::vector<std::uint8_t> bytes =
        tools::read_binary(positionals.front());
    switch (serial::detect_kind(bytes)) {
      case serial::PayloadKind::kProgram: {
        const Program program = serial::decode_program(bytes);
        std::cout << asmtool::disassemble(program);
        if (!config_out.empty()) {
          tools::write_file(config_out, program.config.to_text());
          std::cerr << "configuration written to " << config_out << "\n";
        }
        break;
      }
      case serial::PayloadKind::kModule: {
        if (!config_out.empty()) {
          throw Error("--config-out: an IR module container carries no "
                      "processor configuration");
        }
        std::cout << ir::to_string(serial::decode_module(bytes));
        break;
      }
      case serial::PayloadKind::kConfig: {
        const ProcessorConfig config = serial::decode_config(bytes);
        std::cout << config.to_text();
        if (!config_out.empty()) {
          tools::write_file(config_out, config.to_text());
          std::cerr << "configuration written to " << config_out << "\n";
        }
        break;
      }
    }
    return 0;
  });
}
