// cepic-sim — run a CEPX binary on the cycle-level EPIC simulator (the
// ReaCT-ILP role); prints the output stream and the cycle statistics.
//
//   cepic-sim prog.cepx [--trace] [--max-cycles N]
//   cepic-sim prog.cepx --timeline-out t.json   # per-cycle Perfetto view
#include "tool_common.hpp"

#include "sim/simulator.hpp"
#include "sim/timeline.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-sim", [&]() -> int {
    SimOptions options;

    tools::OptionTable table("cepic-sim <prog.cepx> [options]");
    table.flag("--trace", "print the per-cycle execution trace",
               &options.collect_trace);
    table.uint64_positive("--max-cycles", "N", "simulation cycle budget",
                          &options.max_cycles);
    tools::add_exec_tier_option(table, &options.exec_tier);
    std::string timeline_out;
    std::uint64_t timeline_limit = 1'000'000;
    table.str("--timeline-out", "FILE",
              "write a per-cycle event timeline as Chrome trace JSON",
              &timeline_out);
    table.uint64_positive("--timeline-limit", "N",
                          "timeline bundle cap (truncates with a marker)",
                          &timeline_limit);
    tools::ObsOptions obs_opts;
    tools::add_obs_options(table, &obs_opts);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();
    tools::obs_begin(obs_opts);

    const std::vector<std::uint8_t> bytes =
        tools::read_binary(positionals.front());
    if (const serial::PayloadKind kind = serial::detect_kind(bytes);
        kind != serial::PayloadKind::kProgram) {
      throw Error(cat(positionals.front(),
                      " is not an assembled program (container holds: ",
                      serial::to_string(kind),
                      "); produce one with cepic-cc or cepic-asm first"));
    }
    EpicSimulator sim(serial::decode_program(bytes), {}, options);
    SimTimeline timeline(sim.program().config, timeline_limit);
    if (!timeline_out.empty()) sim.set_timeline(&timeline);
    {
      obs::Span span("simulate", "sim");
      sim.run();
      span.arg("cycles", sim.stats().cycles);
    }
    if (!timeline_out.empty()) {
      tools::write_file(timeline_out, timeline.to_chrome_json());
    }

    if (options.collect_trace) {
      for (const TraceEntry& t : sim.trace()) {
        std::cout << "cycle " << pad_left(cat(t.cycle), 6) << "  bundle "
                  << pad_left(cat(t.bundle), 5) << "  " << t.text << "\n";
      }
    }
    std::cout << "output:";
    for (std::uint32_t v : sim.output()) std::cout << " " << v;
    std::cout << "\nreturn value (r3): " << sim.gpr(3) << "\n\n"
              << sim.stats().report();
    obs::Registry::instance().set_counter("sim.cycles", sim.stats().cycles);
    obs::Registry::instance().set_counter("sim.ops_committed",
                                          sim.stats().ops_committed);
    tools::obs_finish(obs_opts);
    return 0;
  });
}
