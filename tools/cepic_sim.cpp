// cepic-sim — run a CEPX binary on the cycle-level EPIC simulator (the
// ReaCT-ILP role); prints the output stream and the cycle statistics.
//
//   cepic-sim prog.cepx [--trace] [--max-cycles N]
#include "tool_common.hpp"

#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-sim", [&]() -> int {
    SimOptions options;

    tools::OptionTable table("cepic-sim <prog.cepx> [options]");
    table.flag("--trace", "print the per-cycle execution trace",
               &options.collect_trace);
    table.uint64_positive("--max-cycles", "N", "simulation cycle budget",
                          &options.max_cycles);
    bool no_decode_cache = false;
    table.flag("--no-decode-cache",
               "use the interpretive decode-every-cycle simulator path",
               &no_decode_cache);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.size() != 1) return table.usage();
    options.use_decode_cache = !no_decode_cache;

    EpicSimulator sim(
        Program::deserialize(tools::read_binary(positionals.front())), {},
        options);
    sim.run();

    if (options.collect_trace) {
      for (const TraceEntry& t : sim.trace()) {
        std::cout << "cycle " << pad_left(cat(t.cycle), 6) << "  bundle "
                  << pad_left(cat(t.bundle), 5) << "  " << t.text << "\n";
      }
    }
    std::cout << "output:";
    for (std::uint32_t v : sim.output()) std::cout << " " << v;
    std::cout << "\nreturn value (r3): " << sim.gpr(3) << "\n\n"
              << sim.stats().report();
    return 0;
  });
}
