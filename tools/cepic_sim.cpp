// cepic-sim — run a CEPX binary on the cycle-level EPIC simulator (the
// ReaCT-ILP role); prints the output stream and the cycle statistics.
//
//   cepic-sim prog.cepx [--trace] [--max-cycles N]
#include "tool_common.hpp"

#include "sim/simulator.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-sim", [&]() -> int {
    std::string path;
    SimOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--trace") {
        options.collect_trace = true;
      } else if (arg == "--max-cycles") {
        std::int64_t v = 0;
        if (!parse_int(next(), v) || v <= 0) throw Error("bad --max-cycles");
        options.max_cycles = static_cast<std::uint64_t>(v);
      } else if (arg[0] == '-') {
        std::cerr << "usage: cepic-sim <prog.cepx> [--trace] "
                     "[--max-cycles N]\n";
        return 2;
      } else {
        path = arg;
      }
    }
    if (path.empty()) {
      std::cerr << "usage: cepic-sim <prog.cepx> [--trace] [--max-cycles N]\n";
      return 2;
    }

    EpicSimulator sim(Program::deserialize(tools::read_binary(path)), {},
                      options);
    sim.run();

    if (options.collect_trace) {
      for (const TraceEntry& t : sim.trace()) {
        std::cout << "cycle " << pad_left(cat(t.cycle), 6) << "  bundle "
                  << pad_left(cat(t.bundle), 5) << "  " << t.text << "\n";
      }
    }
    std::cout << "output:";
    for (std::uint32_t v : sim.output()) std::cout << " " << v;
    std::cout << "\nreturn value (r3): " << sim.gpr(3) << "\n\n"
              << sim.stats().report();
    return 0;
  });
}
