// Fig. 4 (paper §5.2): DCT execution time — SA-110 at 100 MHz vs the
// EPIC prototype at 41.8 MHz with 1-4 ALUs. The paper's headline: the
// 4-ALU EPIC design runs the DCT benchmark ~5x faster than the SA-110
// ("515% faster"), and performance scales with the number of ALUs.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  const Sizes sizes = parse_sizes(argc, argv);
  const auto w = workloads::make_dct(sizes.dct_dim);

  std::cout << "=== Fig. 4: DCT execution time (SA-110 @ " << kSa110Mhz
            << " MHz, EPIC @ " << kEpicMhz << " MHz) ===\n";
  std::cout << "(fixed-point 8x8 DCT encode+decode of a " << sizes.dct_dim
            << "x" << sizes.dct_dim << " image)\n\n";
  print_row("processor", {"cycles", "time (ms)", "vs SA-110"});

  const RunResult sa = run_sarm(w);
  check_outputs("SA-110", sa);
  const double sa_ms = static_cast<double>(sa.cycles) / (kSa110Mhz * 1e3);
  print_row("SA-110", {cat(sa.cycles), fixed(sa_ms, 3), "1.00x"});

  for (unsigned alus = 1; alus <= 4; ++alus) {
    const RunResult r = run_epic(w, epic_with_alus(alus));
    check_outputs(cat(alus, " ALUs"), r);
    const double ms = static_cast<double>(r.cycles) / (kEpicMhz * 1e3);
    print_row(cat(alus, alus == 1 ? " ALU" : " ALUs"),
              {cat(r.cycles), fixed(ms, 3), cat(fixed(sa_ms / ms, 2), "x")});
  }
  std::cout << "\npaper shape: EPIC wins by the largest margin of all four "
               "benchmarks and scales with ALUs\n";
  return 0;
}
