// Fig. 5 (paper §5.2): Dijkstra execution time — SA-110 at 100 MHz vs
// the EPIC prototype at 41.8 MHz with 1-4 ALUs. The paper: the SA-110
// outperforms the EPIC design on this branch-bound benchmark once the
// clock difference is applied, and performance is nearly flat in the
// number of ALUs.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  const Sizes sizes = parse_sizes(argc, argv);
  const auto w = workloads::make_dijkstra(sizes.dijkstra_nodes);

  std::cout << "=== Fig. 5: Dijkstra execution time (SA-110 @ " << kSa110Mhz
            << " MHz, EPIC @ " << kEpicMhz << " MHz) ===\n";
  std::cout << "(all-pairs shortest paths, " << sizes.dijkstra_nodes
            << "-node adjacency matrix)\n\n";
  print_row("processor", {"cycles", "time (ms)", "vs SA-110"});

  const RunResult sa = run_sarm(w);
  check_outputs("SA-110", sa);
  const double sa_ms = static_cast<double>(sa.cycles) / (kSa110Mhz * 1e3);
  print_row("SA-110", {cat(sa.cycles), fixed(sa_ms, 3), "1.00x"});

  for (unsigned alus = 1; alus <= 4; ++alus) {
    const RunResult r = run_epic(w, epic_with_alus(alus));
    check_outputs(cat(alus, " ALUs"), r);
    const double ms = static_cast<double>(r.cycles) / (kEpicMhz * 1e3);
    print_row(cat(alus, alus == 1 ? " ALU" : " ALUs"),
              {cat(r.cycles), fixed(ms, 3), cat(fixed(sa_ms / ms, 2), "x")});
  }
  std::cout << "\npaper shape: SA-110 wins on wall-clock; EPIC cycles are "
               "~1.7x fewer but the clock gap dominates; flat in ALUs\n";
  return 0;
}
