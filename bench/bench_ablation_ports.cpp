// Ablation A2: the register-file-controller design of paper §3.2 —
// port budget (dual-port RAM at 4x clock = 8 ops/cycle) and result
// forwarding. Also exercises the unified-memory contention variant
// (data accesses stealing instruction-fetch bandwidth).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  Sizes sizes = parse_sizes(argc, argv);
  const auto w = workloads::make_dct(sizes.dct_dim);
  const auto w2 = workloads::make_sha(sizes.sha_dim);

  std::cout << "=== Ablation A2: register-file ports & forwarding ===\n";
  std::cout << "(DCT " << sizes.dct_dim << "x" << sizes.dct_dim << ", SHA "
            << sizes.sha_dim << "x" << sizes.sha_dim << ", 4 ALUs)\n\n";

  print_row("configuration",
            {"DCT cycles", "port stalls", "SHA cycles", "port stalls"},
            26);

  const auto row = [&](const std::string& name, unsigned budget, bool fwd) {
    ProcessorConfig cfg;
    cfg.reg_port_budget = budget;
    cfg.forwarding = fwd;
    EpicSimulator a =
        pipeline::run_once(w.minic_source, cfg, {}, big_sim());
    EpicSimulator b =
        pipeline::run_once(w2.minic_source, cfg, {}, big_sim());
    print_row(name,
              {cat(a.stats().cycles), cat(a.stats().stall_reg_ports),
               cat(b.stats().cycles), cat(b.stats().stall_reg_ports)},
              26);
  };

  row("4 ports + forwarding", 4, true);
  row("8 ports + forwarding (paper)", 8, true);
  row("8 ports, no forwarding", 8, false);
  row("16 ports + forwarding", 16, true);
  row("16 ports, no forwarding", 16, false);

  std::cout << "\n--- unified-memory contention (data steals fetch "
               "bandwidth) ---\n";
  for (bool contention : {false, true}) {
    ProcessorConfig cfg;
    cfg.unified_memory_contention = contention;
    EpicSimulator a =
        pipeline::run_once(w.minic_source, cfg, {}, big_sim());
    std::cout << pad_right(contention ? "shared banks" : "separate data port",
                           26)
              << pad_left(cat(a.stats().cycles), 12) << "  (mem stalls "
              << a.stats().stall_mem_contention << ")\n";
  }
  std::cout << "\npaper design point: 8 ports with forwarding — the "
               "scheduler packs around the budget, so stalls stay near "
               "zero; disabling forwarding exposes the limit\n";
  return 0;
}
