// S1: tooling throughput (google-benchmark) — how fast the CEPIC tools
// themselves run: MiniC compilation, optimisation, EPIC backend,
// assembly, binary encode/decode, and the simulated MIPS of both cycle
// simulators.
#include <benchmark/benchmark.h>

#include "serial/serial.hpp"
#include "asmtool/assembler.hpp"
#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "opt/opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cepic;

const workloads::Workload& dct_workload() {
  static const workloads::Workload w = workloads::make_dct(16);
  return w;
}

void BM_Frontend(benchmark::State& state) {
  const auto& w = dct_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::compile_to_ir(w.minic_source));
  }
}
BENCHMARK(BM_Frontend);

void BM_Optimize(benchmark::State& state) {
  const auto& w = dct_workload();
  const ir::Module base = minic::compile_to_ir(w.minic_source);
  for (auto _ : state) {
    ir::Module m = base;
    opt::optimize(m);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Optimize);

// ---- per-pass micro-benchmarks (BM_OptPass/<name>) -------------------
// Each runs one dense pass invocation over every function of the whole
// workload corpus (unoptimised IR), isolating a single pass's cost from
// the pipeline's scheduling.  The module copy per iteration is part of
// the measured loop for every pass equally.

const std::vector<ir::Module>& opt_corpus() {
  static const std::vector<ir::Module> modules = [] {
    std::vector<ir::Module> out;
    for (const auto& w : workloads::all_workloads(16, 8, 8, 8)) {
      out.push_back(minic::compile_to_ir(w.minic_source));
    }
    out.push_back(minic::compile_to_ir(dct_workload().minic_source));
    return out;
  }();
  return modules;
}

template <typename Pass>
void opt_pass_bench(benchmark::State& state, Pass pass) {
  const auto& corpus = opt_corpus();
  for (auto _ : state) {
    for (const ir::Module& base : corpus) {
      ir::Module m = base;
      for (ir::Function& fn : m.functions) {
        benchmark::DoNotOptimize(pass(fn));
      }
      benchmark::DoNotOptimize(m);
    }
  }
}

void BM_OptPassConstfold(benchmark::State& state) {
  opt_pass_bench(state,
                 [](ir::Function& fn) { return opt::pass_constfold(fn); });
}
BENCHMARK(BM_OptPassConstfold)->Name("BM_OptPass/constfold");

void BM_OptPassCopyProp(benchmark::State& state) {
  opt_pass_bench(
      state, [](ir::Function& fn) { return opt::pass_copy_propagate(fn); });
}
BENCHMARK(BM_OptPassCopyProp)->Name("BM_OptPass/copy_propagate");

void BM_OptPassCse(benchmark::State& state) {
  opt_pass_bench(state, [](ir::Function& fn) { return opt::pass_cse(fn); });
}
BENCHMARK(BM_OptPassCse)->Name("BM_OptPass/cse");

void BM_OptPassDce(benchmark::State& state) {
  opt_pass_bench(state, [](ir::Function& fn) { return opt::pass_dce(fn); });
}
BENCHMARK(BM_OptPassDce)->Name("BM_OptPass/dce");

void BM_OptPassSimplifyCfg(benchmark::State& state) {
  opt_pass_bench(state,
                 [](ir::Function& fn) { return opt::pass_simplify_cfg(fn); });
}
BENCHMARK(BM_OptPassSimplifyCfg)->Name("BM_OptPass/simplify_cfg");

void BM_OptPassLicm(benchmark::State& state) {
  opt_pass_bench(state, [](ir::Function& fn) { return opt::pass_licm(fn); });
}
BENCHMARK(BM_OptPassLicm)->Name("BM_OptPass/licm");

void BM_OptPassIfConvert(benchmark::State& state) {
  opt_pass_bench(
      state, [](ir::Function& fn) { return opt::pass_if_convert(fn, 10); });
}
BENCHMARK(BM_OptPassIfConvert)->Name("BM_OptPass/if_convert");

void BM_OptPassInline(benchmark::State& state) {
  const auto& corpus = opt_corpus();
  for (auto _ : state) {
    for (const ir::Module& base : corpus) {
      ir::Module m = base;
      benchmark::DoNotOptimize(opt::pass_inline(m, 200));
      benchmark::DoNotOptimize(m);
    }
  }
}
BENCHMARK(BM_OptPassInline)->Name("BM_OptPass/inline");

void BM_EpicBackend(benchmark::State& state) {
  const auto& w = dct_workload();
  ir::Module m = minic::compile_to_ir(w.minic_source);
  opt::optimize(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend::compile_ir_to_asm(m, ProcessorConfig{}));
  }
}
BENCHMARK(BM_EpicBackend);

void BM_Assembler(benchmark::State& state) {
  const auto& w = dct_workload();
  const auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const Program p = asmtool::assemble(compiled.asm_text, ProcessorConfig{});
    ops += p.code.size();
    benchmark::DoNotOptimize(p);
  }
  state.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Assembler);

void BM_BinaryRoundtrip(benchmark::State& state) {
  const auto& w = dct_workload();
  const auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serial::decode_program(serial::encode_program(compiled.program)));
  }
}
BENCHMARK(BM_BinaryRoundtrip);

// Default options: the threaded-code tier (blocks compile during the
// first iterations and are reused by every later run).
void BM_EpicSimulator(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  EpicSimulator sim(compiled.program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulator);

// The pre-decoded fast path on its own: the baseline the threaded
// tier's speedup is measured against (CI perf-smoke guards the ratio).
void BM_EpicSimulatorDecode(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  SimOptions options;
  options.exec_tier = ExecTier::Decode;
  EpicSimulator sim(compiled.program, {}, options);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulatorDecode);

// The interpretive decode-every-cycle path: keeps the faster tiers'
// speedup honest in the recorded history.
void BM_EpicSimulatorLegacy(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  SimOptions options;
  options.exec_tier = ExecTier::Interp;
  EpicSimulator sim(compiled.program, {}, options);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulatorLegacy);

void BM_SarmSimulator(benchmark::State& state) {
  const auto& w = dct_workload();
  auto program = sarm::compile_minic_to_sarm(w.minic_source);
  sarm::SarmSimulator sim(program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SarmSimulator);

void BM_IrInterpreter(benchmark::State& state) {
  const auto& w = dct_workload();
  ir::Module m = minic::compile_to_ir(w.minic_source);
  for (auto _ : state) {
    ir::Interpreter interp(m);
    benchmark::DoNotOptimize(interp.run());
  }
}
BENCHMARK(BM_IrInterpreter);

}  // namespace

BENCHMARK_MAIN();
