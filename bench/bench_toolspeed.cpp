// S1: tooling throughput (google-benchmark) — how fast the CEPIC tools
// themselves run: MiniC compilation, optimisation, EPIC backend,
// assembly, binary encode/decode, and the simulated MIPS of both cycle
// simulators.
#include <benchmark/benchmark.h>

#include "serial/serial.hpp"
#include "asmtool/assembler.hpp"
#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "opt/opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cepic;

const workloads::Workload& dct_workload() {
  static const workloads::Workload w = workloads::make_dct(16);
  return w;
}

void BM_Frontend(benchmark::State& state) {
  const auto& w = dct_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::compile_to_ir(w.minic_source));
  }
}
BENCHMARK(BM_Frontend);

void BM_Optimize(benchmark::State& state) {
  const auto& w = dct_workload();
  const ir::Module base = minic::compile_to_ir(w.minic_source);
  for (auto _ : state) {
    ir::Module m = base;
    opt::optimize(m);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Optimize);

void BM_EpicBackend(benchmark::State& state) {
  const auto& w = dct_workload();
  ir::Module m = minic::compile_to_ir(w.minic_source);
  opt::optimize(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend::compile_ir_to_asm(m, ProcessorConfig{}));
  }
}
BENCHMARK(BM_EpicBackend);

void BM_Assembler(benchmark::State& state) {
  const auto& w = dct_workload();
  const auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const Program p = asmtool::assemble(compiled.asm_text, ProcessorConfig{});
    ops += p.code.size();
    benchmark::DoNotOptimize(p);
  }
  state.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Assembler);

void BM_BinaryRoundtrip(benchmark::State& state) {
  const auto& w = dct_workload();
  const auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serial::decode_program(serial::encode_program(compiled.program)));
  }
}
BENCHMARK(BM_BinaryRoundtrip);

// Default options: the threaded-code tier (blocks compile during the
// first iterations and are reused by every later run).
void BM_EpicSimulator(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  EpicSimulator sim(compiled.program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulator);

// The pre-decoded fast path on its own: the baseline the threaded
// tier's speedup is measured against (CI perf-smoke guards the ratio).
void BM_EpicSimulatorDecode(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  SimOptions options;
  options.exec_tier = ExecTier::Decode;
  EpicSimulator sim(compiled.program, {}, options);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulatorDecode);

// The interpretive decode-every-cycle path: keeps the faster tiers'
// speedup honest in the recorded history.
void BM_EpicSimulatorLegacy(benchmark::State& state) {
  const auto& w = dct_workload();
  auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  SimOptions options;
  options.exec_tier = ExecTier::Interp;
  EpicSimulator sim(compiled.program, {}, options);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpicSimulatorLegacy);

void BM_SarmSimulator(benchmark::State& state) {
  const auto& w = dct_workload();
  auto program = sarm::compile_minic_to_sarm(w.minic_source);
  sarm::SarmSimulator sim(program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.reset();
    sim.run();
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SarmSimulator);

void BM_IrInterpreter(benchmark::State& state) {
  const auto& w = dct_workload();
  ir::Module m = minic::compile_to_ir(w.minic_source);
  for (auto _ : state) {
    ir::Interpreter interp(m);
    benchmark::DoNotOptimize(interp.run());
  }
}
BENCHMARK(BM_IrInterpreter);

}  // namespace

BENCHMARK_MAIN();
