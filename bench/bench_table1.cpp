// Table 1 (paper §5.2): clock cycles for SHA, AES, DCT and Dijkstra on
// the StrongARM SA-110 and on the EPIC processor with 1-4 ALUs, plus
// the paper's headline cycle ratios (SA-110 / EPIC-4ALU).
//
// Paper prose ground truth (Table 1's absolute values did not survive
// text extraction): with 4 ALUs the EPIC design completes in ~1.7x
// (Dijkstra), ~3.8x (SHA) and ~12.3x (DCT) fewer cycles than the
// SA-110, while AES stays roughly flat in the number of ALUs.
//
// The EPIC side runs through the exploration engine (src/explore): all
// (workload, ALU count) pairs go through one run_sweep_batch call — a
// single pipeline::Service with one shared thread pool and one artifact
// store — exactly the library path cepic-explore uses.
#include "bench_util.hpp"

#include "explore/explore.hpp"
#include "pipeline/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  const Sizes sizes = parse_sizes(argc, argv);
  const auto workloads = workloads::all_workloads(
      sizes.sha_dim, sizes.aes_iters, sizes.dct_dim, sizes.dijkstra_nodes);

  std::cout << "=== Table 1: clock cycles per benchmark ===\n";
  std::cout << "(SHA " << sizes.sha_dim << "x" << sizes.sha_dim
            << " image, AES x" << sizes.aes_iters << ", DCT "
            << sizes.dct_dim << "x" << sizes.dct_dim << ", Dijkstra "
            << sizes.dijkstra_nodes << " nodes)\n\n";

  print_row("", {"SHA", "AES", "DCT", "Dijkstra"});

  std::vector<std::uint64_t> sa110;
  {
    std::vector<std::string> cells;
    for (const auto& w : workloads) {
      const RunResult r = run_sarm(w);
      check_outputs("SA-110/" + w.name, r);
      sa110.push_back(r.cycles);
      cells.push_back(cat(r.cycles));
    }
    print_row("SA-110", cells);
  }

  // All (workload, ALU count) pairs in one batch through the
  // exploration engine; rows of the printed table are (ALU count) x
  // (workload), so gather the sweep results first and then print by row.
  explore::SweepSpec spec;
  for (unsigned alus = 1; alus <= 4; ++alus) spec.add(epic_with_alus(alus));
  explore::ExploreOptions options;
  options.jobs = pipeline::ThreadPool::hardware_jobs();
  options.sim = big_sim();

  std::vector<std::string> sources;
  for (const auto& w : workloads) sources.push_back(w.minic_source);
  const std::vector<explore::SweepResult> sweeps =
      explore::run_sweep_batch(sources, spec, options).sweeps;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const auto& w = workloads[wi];
    for (const auto& p : sweeps[wi].points) {
      if (!p.ok) {
        std::cout << "!! " << w.name << "/" << p.config.summary()
                  << ": " << p.error << "\n";
      } else if (p.output_hash !=
                 explore::hash_output(w.expected_output)) {
        std::cout << "!! " << p.config.num_alus << "ALU/" << w.name
                  << ": OUTPUT MISMATCH vs golden — results invalid\n";
      }
    }
  }

  std::vector<std::uint64_t> epic4;
  for (unsigned alus = 1; alus <= 4; ++alus) {
    std::vector<std::string> cells;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const explore::PointResult& p = sweeps[wi].points[alus - 1];
      if (alus == 4) epic4.push_back(p.cycles);
      cells.push_back(cat(p.cycles));
    }
    print_row(cat(alus, alus == 1 ? " ALU" : " ALUs"), cells);
  }

  std::cout << "\ncycle ratio SA-110 / EPIC(4 ALUs)   [paper: SHA 3.8x, "
               "DCT 12.3x, Dijkstra 1.7x]\n";
  std::vector<std::string> cells;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    cells.push_back(cat(fixed(static_cast<double>(sa110[i]) /
                                  static_cast<double>(epic4[i]),
                              2),
                        "x"));
  }
  print_row("ratio", cells);
  return 0;
}
