// Ablation A4 (paper §3.3 customisation): both directions of the
// performance/area trade —
//   * adding a custom instruction: a `rotr` (rotate-right) custom ALU op
//     replaces the 3-op shift/shift/or sequence at +96 slices per ALU —
//     measured on a rotation-chain kernel (the SHA-256 inner pattern),
//     written in EPIC assembly and assembled for each customisation;
//   * removing unused hardware: dropping the divider/shifter from the
//     ALUs shrinks the design (slice counts from the FPGA model).
#include "bench_util.hpp"

#include "asmtool/assembler.hpp"
#include "fpga/model.hpp"

namespace {

std::string rotation_kernel(bool use_custom, int iters) {
  using cepic::cat;
  std::string body;
  body += ".entry main\n";
  body += "main:\n";
  body += cat("mov r10, #", iters, " ;;\n");
  body += "mov r11, #0x1234 ;;\n";
  body += "pbr b1, @loop ;;\n";
  body += "loop:\n";
  // Four dependent rotations per iteration (amounts 7, 18, 17, 19 — the
  // SHA-256 sigma rotations).
  for (int amount : {7, 18, 17, 19}) {
    if (use_custom) {
      body += cat("custom0 r11, r11, #", amount, " ;;\n");
    } else {
      body += cat("shrl r12, r11, #", amount, " ;;\n");
      body += cat("shl r13, r11, #", 32 - amount, " ;;\n");
      body += "or r11, r12, r13 ;;\n";
    }
  }
  body += "sub r10, r10, #1 ;;\n";
  body += "cmpp.gt p1, p0, r10, #0 ;;\n";
  body += "brct b1, p1 ;;\n";
  body += "out r11 ;;\n";
  body += "halt ;;\n";
  return body;
}

}  // namespace

int main() {
  using namespace cepic;
  using namespace cepic::bench;

  std::cout << "=== Ablation A4: custom instructions & feature trims ===\n\n";

  std::cout << "--- custom `rotr` instruction (rotation kernel, 1000 "
               "iterations) ---\n";
  const int iters = 1000;

  ProcessorConfig base_cfg;
  Program base = asmtool::assemble(rotation_kernel(false, iters), base_cfg);
  EpicSimulator base_sim(std::move(base));
  base_sim.run();

  ProcessorConfig custom_cfg;
  custom_cfg.custom_ops = {"rotr"};
  Program custom =
      asmtool::assemble(rotation_kernel(true, iters), custom_cfg);
  EpicSimulator custom_sim(std::move(custom),
                           CustomOpTable::for_names(custom_cfg.custom_ops));
  custom_sim.run();

  if (base_sim.output() != custom_sim.output()) {
    std::cout << "!! custom and composed kernels disagree\n";
  }

  const auto base_est = fpga::estimate(base_cfg);
  const CustomOpTable table = CustomOpTable::for_names(custom_cfg.custom_ops);
  const auto custom_est = fpga::estimate(custom_cfg, &table);

  print_row("", {"cycles", "slices"}, 24);
  print_row("shift/shift/or", {cat(base_sim.stats().cycles),
                               fixed(base_est.slices, 0)},
            24);
  print_row("custom rotr", {cat(custom_sim.stats().cycles),
                            fixed(custom_est.slices, 0)},
            24);
  std::cout << pad_right("trade", 24)
            << pad_left(cat(fixed(static_cast<double>(base_sim.stats().cycles) /
                                      static_cast<double>(
                                          custom_sim.stats().cycles),
                                  2),
                            "x faster"),
                        12)
            << pad_left(cat("+", fixed(custom_est.slices - base_est.slices, 0),
                            " slices"),
                        14)
            << "\n";

  std::cout << "\n--- removing unused operations (paper: \"ALUs do not "
               "need to support division...\") ---\n";
  const auto trim_row = [](const char* name, const ProcessorConfig& cfg) {
    const auto e = fpga::estimate(cfg);
    std::cout << pad_right(name, 24) << pad_left(fixed(e.slices, 0), 10)
              << " slices" << pad_left(cat(e.block_mults), 6) << " MULT18\n";
  };
  ProcessorConfig full;
  trim_row("full ALUs (4x)", full);
  ProcessorConfig no_div = full;
  no_div.alu.has_div = false;
  trim_row("no divider", no_div);
  ProcessorConfig no_mul = no_div;
  no_mul.alu.has_mul = false;
  trim_row("no divider/multiplier", no_mul);
  ProcessorConfig lean = no_mul;
  lean.alu.has_shift = false;
  lean.alu.has_minmax = false;
  trim_row("add/logic only", lean);
  return 0;
}
