// Ablation A3: instructions per issue, the paper's §3.3 parameter that
// memory bandwidth constrains to 1..4. Sweeps issue width (at 4 ALUs)
// over all four benchmarks.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  Sizes sizes = parse_sizes(argc, argv);
  const auto workloads = workloads::all_workloads(
      sizes.sha_dim, sizes.aes_iters, sizes.dct_dim, sizes.dijkstra_nodes);

  std::cout << "=== Ablation A3: instructions per issue (1..4) ===\n\n";
  print_row("", {"SHA", "AES", "DCT", "Dijkstra"});

  std::vector<std::uint64_t> width1;
  for (unsigned issue = 1; issue <= 4; ++issue) {
    std::vector<std::string> cells;
    for (const auto& w : workloads) {
      ProcessorConfig cfg;
      cfg.issue_width = issue;
      const RunResult r = run_epic(w, cfg);
      check_outputs(cat("issue", issue, "/", w.name), r);
      if (issue == 1) width1.push_back(r.cycles);
      cells.push_back(cat(r.cycles));
    }
    print_row(cat("issue ", issue), cells);
  }

  std::cout << "\nspeedup of issue 4 over issue 1:\n";
  std::vector<std::string> cells;
  {
    std::size_t i = 0;
    for (const auto& w : workloads) {
      ProcessorConfig cfg;
      const RunResult r = run_epic(w, cfg);
      cells.push_back(cat(fixed(static_cast<double>(width1[i]) /
                                    static_cast<double>(r.cycles),
                                2),
                          "x"));
      ++i;
    }
  }
  print_row("", cells);
  std::cout << "\n(ILP-rich benchmarks gain from width; branch/memory-bound "
               "ones saturate early)\n";
  return 0;
}
