#!/usr/bin/env bash
# Record the tool-speed benchmark trajectory.
#
# Runs bench_toolspeed with --benchmark_format=json and appends one
# labelled run record to BENCH_toolspeed.json at the repo root, so the
# committed file accumulates a perf history (baseline, after each
# optimisation, ...) instead of overwriting it.
#
#   bench/record_bench.sh [label] [build_dir]
#
#   label      name for this run (default: the current short commit)
#   build_dir  CMake build tree holding bench/bench_toolspeed
#              (default: build)
#
# Environment:
#   BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
#   BENCH_MIN_TIME  --benchmark_min_time seconds (default: 0.5)
#   BENCH_ALLOW_NONRELEASE=1
#                   record from a non-Release build tree anyway; the
#                   run is tagged so ratio comparisons can exclude it
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}"
build_dir="${2:-build}"
bench_bin="$repo_root/$build_dir/bench/bench_toolspeed"
out_file="$repo_root/BENCH_toolspeed.json"

if [[ ! -x "$bench_bin" ]]; then
  echo "record_bench: $bench_bin not built (cmake --build $build_dir --target bench_toolspeed)" >&2
  exit 1
fi

# The committed history is only comparable if every run came from an
# optimised build: refuse debug trees unless explicitly overridden, and
# tag any overridden run so it can be excluded from ratio guards.
cmake_cache="$repo_root/$build_dir/CMakeCache.txt"
cmake_build_type="unknown"
if [[ -f "$cmake_cache" ]]; then
  cmake_build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cmake_cache")"
  cmake_build_type="${cmake_build_type:-unset}"
fi
if [[ "$cmake_build_type" != "Release" ]]; then
  if [[ "${BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
    echo "record_bench: $build_dir is CMAKE_BUILD_TYPE=$cmake_build_type, not Release." >&2
    echo "record_bench: numbers from unoptimised builds poison the committed history;" >&2
    echo "record_bench: build with -DCMAKE_BUILD_TYPE=Release, or set BENCH_ALLOW_NONRELEASE=1" >&2
    echo "record_bench: to record anyway (the run will be tagged non-release)." >&2
    exit 1
  fi
  label="$label (non-release: $cmake_build_type)"
  echo "record_bench: WARNING recording from a $cmake_build_type build tree" >&2
fi

tmp_json="$(mktemp)"
trap 'rm -f "$tmp_json"' EXIT

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.5}" \
  ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
  > "$tmp_json"

# Stamp provenance: the short commit and whether the tree was dirty at
# record time, so every trajectory point in `cepic-prof bench` is
# attributable to an exact source state.
git_dirty=false
if [[ -n "$(git -C "$repo_root" status --porcelain 2>/dev/null)" ]]; then
  git_dirty=true
fi

label="$label" run_json="$tmp_json" out_file="$out_file" \
  cmake_build_type="$cmake_build_type" git_dirty="$git_dirty" \
  commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)" \
python3 - <<'EOF'
import json
import os

out_file = os.environ["out_file"]
with open(os.environ["run_json"]) as f:
    run = json.load(f)

history = {"runs": []}
if os.path.exists(out_file):
    with open(out_file) as f:
        history = json.load(f)

history["runs"].append({
    "label": os.environ["label"],
    "commit": os.environ["commit"],
    "date": run.get("context", {}).get("date", ""),
    "context": {
        **{
            k: run.get("context", {}).get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type")
        },
        "cmake_build_type": os.environ["cmake_build_type"],
        "git_commit": os.environ["commit"],
        "git_dirty": os.environ["git_dirty"] == "true",
    },
    "benchmarks": run.get("benchmarks", []),
})

with open(out_file, "w") as f:
    json.dump(history, f, indent=1)
    f.write("\n")

for b in run.get("benchmarks", []):
    extras = [
        f"{k}={v:.3g}" for k, v in b.items()
        if k.endswith("/s") or k == "insts/s"
    ]
    print(f"  {b['name']}: {b['real_time']:.0f} {b['time_unit']}"
          + (f"  ({', '.join(extras)})" if extras else ""))
print(f"record_bench: appended run '{os.environ['label']}' to {out_file}")
EOF

# Best-effort: validate the updated history when cepic-prof is built in
# the same tree (CI validates it unconditionally).
prof_bin="$repo_root/$build_dir/tools/cepic-prof"
if [[ -x "$prof_bin" ]]; then
  "$prof_bin" --validate "$repo_root/schemas/bench.schema.json" "$out_file"
fi
