// §5.1 resource usage (paper): slices as a function of the number of
// ALUs (4181/6779/9367/~11955, ~2600 per ALU), register file in block
// RAM with negligible slice cost, multiplication on block multipliers,
// 41.8 MHz clock independent of ALU count. Plus the width sweep the
// parameterisation enables.
#include <iostream>

#include "core/custom.hpp"
#include "fpga/model.hpp"
#include "support/text.hpp"

int main() {
  using namespace cepic;
  using cepic::fpga::estimate;

  std::cout << "=== §5.1 resource usage (analytic Virtex-II model) ===\n\n";

  std::cout << "--- slices vs number of ALUs   [paper: 4181 / 6779 / 9367 / "
               "~11955, ~2600 per ALU] ---\n";
  std::cout << pad_right("ALUs", 8) << pad_left("slices", 10)
            << pad_left("BRAMs", 8) << pad_left("MULT18", 8)
            << pad_left("fmax", 10) << "\n";
  double prev = 0;
  for (unsigned alus = 1; alus <= 4; ++alus) {
    ProcessorConfig cfg;
    cfg.num_alus = alus;
    const auto e = estimate(cfg);
    std::cout << pad_right(cat(alus), 8) << pad_left(fixed(e.slices, 0), 10)
              << pad_left(cat(e.block_rams), 8)
              << pad_left(cat(e.block_mults), 8)
              << pad_left(cat(fixed(e.fmax_mhz, 1), " MHz"), 10);
    if (alus > 1) std::cout << "   (+" << fixed(e.slices - prev, 0) << ")";
    prev = e.slices;
    std::cout << "\n";
  }

  std::cout << "\n--- register file size  [paper: SelectRAM; negligible "
               "slice / fmax effect] ---\n";
  std::cout << pad_right("GPRs", 8) << pad_left("slices", 10)
            << pad_left("BRAMs", 8) << pad_left("fmax", 10) << "\n";
  for (unsigned gprs : {16u, 32u, 64u}) {
    ProcessorConfig cfg;
    cfg.num_gprs = gprs;
    if (gprs < 32) cfg.num_preds = 16;
    const auto e = estimate(cfg);
    std::cout << pad_right(cat(gprs), 8) << pad_left(fixed(e.slices, 0), 10)
              << pad_left(cat(e.block_rams), 8)
              << pad_left(cat(fixed(e.fmax_mhz, 1), " MHz"), 10) << "\n";
  }

  std::cout << "\n--- datapath width (customisation parameter) ---\n";
  std::cout << pad_right("width", 8) << pad_left("slices", 10)
            << pad_left("fmax", 10) << "\n";
  for (unsigned width : {16u, 32u, 64u}) {
    ProcessorConfig cfg;
    cfg.datapath_width = width;
    const auto e = estimate(cfg);
    std::cout << pad_right(cat(width, "b"), 8)
              << pad_left(fixed(e.slices, 0), 10)
              << pad_left(cat(fixed(e.fmax_mhz, 1), " MHz"), 10) << "\n";
  }

  std::cout << "\n--- ALU feature trims (paper §3.3: drop unused "
               "operations) ---\n";
  const auto full = estimate(ProcessorConfig{});
  ProcessorConfig no_div;
  no_div.alu.has_div = false;
  ProcessorConfig lean = no_div;
  lean.alu.has_shift = false;
  lean.alu.has_minmax = false;
  std::cout << pad_right("full ALU set", 22)
            << pad_left(fixed(full.slices, 0), 10) << " slices\n";
  std::cout << pad_right("no divider", 22)
            << pad_left(fixed(estimate(no_div).slices, 0), 10) << " slices\n";
  std::cout << pad_right("add/logic only", 22)
            << pad_left(fixed(estimate(lean).slices, 0), 10) << " slices\n";

  std::cout << "\n--- default configuration breakdown ---\n";
  std::cout << full.report();
  std::cout << fpga::estimate_power(full).report();

  std::cout << "\n--- pipeline depth (paper §6 future work) ---\n";
  std::cout << pad_right("stages", 8) << pad_left("slices", 10)
            << pad_left("fmax", 10) << pad_left("power", 10) << "\n";
  for (unsigned stages : {2u, 3u, 4u}) {
    ProcessorConfig cfg;
    cfg.pipeline_stages = stages;
    const auto e = estimate(cfg);
    std::cout << pad_right(cat(stages), 8) << pad_left(fixed(e.slices, 0), 10)
              << pad_left(cat(fixed(e.fmax_mhz, 1), " MHz"), 10)
              << pad_left(cat(fixed(fpga::estimate_power(e).total(), 0),
                              " mW"), 10)
              << "\n";
  }
  return 0;
}
