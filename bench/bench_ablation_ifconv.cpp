// Ablation A1: if-conversion (EPIC predication, paper §2) on vs off,
// across all four benchmarks on the 4-ALU default configuration.
// Predication removes branches (and their bubbles) from hammock-shaped
// control flow; Dijkstra's relax step is the showcase.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  Sizes sizes = parse_sizes(argc, argv);
  const auto workloads = workloads::all_workloads(
      sizes.sha_dim, sizes.aes_iters, sizes.dct_dim, sizes.dijkstra_nodes);

  std::cout << "=== Ablation A1: if-conversion (predication) ===\n\n";
  print_row("benchmark",
            {"cycles (on)", "cycles (off)", "speedup", "branches on/off"});

  for (const auto& w : workloads) {
    pipeline::CodegenOptions on;
    pipeline::CodegenOptions off;
    off.opt.if_convert = false;

    EpicSimulator sim_on =
        pipeline::run_once(w.minic_source, ProcessorConfig{}, on,
                                  big_sim());
    EpicSimulator sim_off =
        pipeline::run_once(w.minic_source, ProcessorConfig{}, off,
                                  big_sim());
    const auto br = [](const EpicSimulator& s) {
      return s.stats().branches_taken + s.stats().branches_not_taken;
    };
    print_row(w.name,
              {cat(sim_on.stats().cycles), cat(sim_off.stats().cycles),
               cat(fixed(static_cast<double>(sim_off.stats().cycles) /
                             static_cast<double>(sim_on.stats().cycles),
                         3),
                   "x"),
               cat(br(sim_on), "/", br(sim_off))});
  }
  std::cout << "\n(if-conversion trades branch bubbles for nullified "
               "predicated ops)\n";
  return 0;
}
