// Fig. 3 (paper §5.2): SHA execution time — SA-110 at 100 MHz vs the
// EPIC prototype at 41.8 MHz with 1-4 ALUs. The paper reports the EPIC
// 4-ALU design ~60% faster than the SA-110 on SHA despite the lower
// clock.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  const Sizes sizes = parse_sizes(argc, argv);
  const auto w = workloads::make_sha(sizes.sha_dim);

  std::cout << "=== Fig. 3: SHA execution time (SA-110 @ " << kSa110Mhz
            << " MHz, EPIC @ " << kEpicMhz << " MHz) ===\n";
  std::cout << "(SHA-256 of a " << sizes.sha_dim << "x" << sizes.sha_dim
            << " RGB image)\n\n";
  print_row("processor", {"cycles", "time (ms)", "vs SA-110"});

  const RunResult sa = run_sarm(w);
  check_outputs("SA-110", sa);
  const double sa_ms = static_cast<double>(sa.cycles) / (kSa110Mhz * 1e3);
  print_row("SA-110", {cat(sa.cycles), fixed(sa_ms, 3), "1.00x"});

  for (unsigned alus = 1; alus <= 4; ++alus) {
    const RunResult r = run_epic(w, epic_with_alus(alus));
    check_outputs(cat(alus, " ALUs"), r);
    const double ms = static_cast<double>(r.cycles) / (kEpicMhz * 1e3);
    print_row(cat(alus, alus == 1 ? " ALU" : " ALUs"),
              {cat(r.cycles), fixed(ms, 3), cat(fixed(sa_ms / ms, 2), "x")});
  }
  std::cout << "\npaper shape: EPIC(4 ALUs) ~1.6x faster than SA-110; time "
               "improves with ALUs\n";
  return 0;
}
