// Ablation A5 (paper §6 future work, implemented here): parameterised
// pipeline depth. Deeper pipelines raise the modelled clock (the paper:
// "with further optimisations in the datapath additional speedup should
// be possible") but pay an extra taken-branch bubble per stage — so the
// winner depends on how branchy the workload is.
#include "bench_util.hpp"

#include "fpga/model.hpp"

int main(int argc, char** argv) {
  using namespace cepic;
  using namespace cepic::bench;

  Sizes sizes = parse_sizes(argc, argv);
  const auto workloads = workloads::all_workloads(
      sizes.sha_dim, sizes.aes_iters, sizes.dct_dim, sizes.dijkstra_nodes);

  std::cout << "=== Ablation A5: pipeline depth (2/3/4 stages) ===\n\n";

  for (const auto& w : workloads) {
    std::cout << "--- " << w.name << " ---\n";
    print_row("stages", {"fmax", "cycles", "time (ms)", "vs 2-stage"}, 10);
    double base_ms = 0;
    for (unsigned stages : {2u, 3u, 4u}) {
      ProcessorConfig cfg;
      cfg.pipeline_stages = stages;
      const auto area = fpga::estimate(cfg);
      EpicSimulator sim =
          pipeline::run_once(w.minic_source, cfg, {}, big_sim());
      if (sim.output() != w.expected_output) {
        std::cout << "!! output mismatch\n";
        continue;
      }
      const double ms =
          static_cast<double>(sim.stats().cycles) / (area.fmax_mhz * 1e3);
      if (stages == 2) base_ms = ms;
      print_row(cat(stages),
                {cat(fixed(area.fmax_mhz, 1), " MHz"),
                 cat(sim.stats().cycles), fixed(ms, 3),
                 cat(fixed(base_ms / ms, 2), "x")},
                10);
    }
    std::cout << "\n";
  }
  std::cout << "(arithmetic-bound kernels bank the clock gain; branchy "
               "ones give part of it back in bubbles)\n";
  return 0;
}
