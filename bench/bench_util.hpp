// Shared harness for the paper-reproduction benches: runs a workload on
// the SA-110 baseline and on EPIC customisations, and prints the
// paper-style tables. Every bench binary accepts:
//   --small      reduced workload sizes (CI-friendly)
//   --sha N --aes N --dct N --dijkstra N   explicit sizes
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "support/error.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic::bench {

struct Sizes {
  int sha_dim = 64;        // paper: 256x256 image
  int aes_iters = 100;     // paper: 1000 iterations
  int dct_dim = 64;        // paper: 256x256 image
  int dijkstra_nodes = 32; // paper: "a large graph"
};

inline Sizes parse_sizes(int argc, char** argv) {
  Sizes s;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> int {
      if (i + 1 >= argc) throw Error(cat(arg, " needs a value"));
      std::int64_t v = 0;
      if (!parse_int(argv[++i], v)) throw Error(cat("bad value for ", arg));
      return static_cast<int>(v);
    };
    if (arg == "--small") {
      s = Sizes{16, 8, 16, 12};
    } else if (arg == "--sha") {
      s.sha_dim = next();
    } else if (arg == "--aes") {
      s.aes_iters = next();
    } else if (arg == "--dct") {
      s.dct_dim = next();
    } else if (arg == "--dijkstra") {
      s.dijkstra_nodes = next();
    } else if (arg == "--help") {
      std::cout << "flags: --small | --sha N | --aes N | --dct N |"
                   " --dijkstra N\n";
      std::exit(0);
    }
  }
  return s;
}

/// Paper clock rates (§5.2): SA-110 at 100 MHz, the EPIC prototype at
/// 41.8 MHz.
inline constexpr double kSa110Mhz = 100.0;
inline constexpr double kEpicMhz = 41.8;

struct RunResult {
  std::uint64_t cycles = 0;
  bool output_ok = false;
  double ilp = 0;
};

inline SimOptions big_sim() {
  SimOptions o;
  o.max_cycles = 8'000'000'000ull;
  return o;
}

inline RunResult run_epic(const workloads::Workload& w,
                          const ProcessorConfig& cfg,
                          const pipeline::CodegenOptions& options = {}) {
  EpicSimulator sim =
      pipeline::run_once(w.minic_source, cfg, options, big_sim());
  RunResult r;
  r.cycles = sim.stats().cycles;
  r.output_ok = sim.output() == w.expected_output;
  r.ilp = sim.stats().ilp();
  return r;
}

inline RunResult run_sarm(const workloads::Workload& w,
                          const sarm::SarmCompileOptions& options = {}) {
  sarm::SarmOptionsSim so;
  so.max_cycles = 8'000'000'000ull;
  sarm::SarmSimulator sim =
      sarm::run_minic_on_sarm(w.minic_source, options, so);
  RunResult r;
  r.cycles = sim.stats().cycles;
  r.output_ok = sim.output() == w.expected_output;
  return r;
}

inline ProcessorConfig epic_with_alus(unsigned alus) {
  ProcessorConfig cfg;
  cfg.num_alus = alus;
  return cfg;
}

inline void print_row(const std::string& head,
                      const std::vector<std::string>& cells,
                      std::size_t head_width = 14,
                      std::size_t cell_width = 12) {
  std::cout << pad_right(head, head_width);
  for (const std::string& c : cells) std::cout << pad_left(c, cell_width);
  std::cout << "\n";
}

inline void check_outputs(const std::string& name, const RunResult& r) {
  if (!r.output_ok) {
    std::cout << "!! " << name << ": OUTPUT MISMATCH vs golden — results "
                 "invalid\n";
  }
}

}  // namespace cepic::bench
