# Empty compiler generated dependencies file for custom_instruction.
# This may be replaced when dependencies are built.
