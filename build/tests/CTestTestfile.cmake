# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_mdes[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_sim_timing[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_irgen[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_epic[1]_include.cmake")
include("/root/repo/build/tests/test_sarm[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_futurework[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_licm[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_printing[1]_include.cmake")
