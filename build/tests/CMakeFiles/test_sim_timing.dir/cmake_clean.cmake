file(REMOVE_RECURSE
  "CMakeFiles/test_sim_timing.dir/test_sim_timing.cpp.o"
  "CMakeFiles/test_sim_timing.dir/test_sim_timing.cpp.o.d"
  "test_sim_timing"
  "test_sim_timing.pdb"
  "test_sim_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
