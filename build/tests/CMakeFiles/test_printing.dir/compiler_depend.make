# Empty compiler generated dependencies file for test_printing.
# This may be replaced when dependencies are built.
