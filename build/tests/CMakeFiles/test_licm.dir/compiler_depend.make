# Empty compiler generated dependencies file for test_licm.
# This may be replaced when dependencies are built.
