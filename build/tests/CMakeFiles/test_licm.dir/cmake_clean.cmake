file(REMOVE_RECURSE
  "CMakeFiles/test_licm.dir/test_licm.cpp.o"
  "CMakeFiles/test_licm.dir/test_licm.cpp.o.d"
  "test_licm"
  "test_licm.pdb"
  "test_licm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_licm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
