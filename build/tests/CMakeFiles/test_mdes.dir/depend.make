# Empty dependencies file for test_mdes.
# This may be replaced when dependencies are built.
