file(REMOVE_RECURSE
  "CMakeFiles/test_mdes.dir/test_mdes.cpp.o"
  "CMakeFiles/test_mdes.dir/test_mdes.cpp.o.d"
  "test_mdes"
  "test_mdes.pdb"
  "test_mdes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
