file(REMOVE_RECURSE
  "CMakeFiles/test_futurework.dir/test_futurework.cpp.o"
  "CMakeFiles/test_futurework.dir/test_futurework.cpp.o.d"
  "test_futurework"
  "test_futurework.pdb"
  "test_futurework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
