# Empty compiler generated dependencies file for test_sarm.
# This may be replaced when dependencies are built.
