file(REMOVE_RECURSE
  "CMakeFiles/test_sarm.dir/test_sarm.cpp.o"
  "CMakeFiles/test_sarm.dir/test_sarm.cpp.o.d"
  "test_sarm"
  "test_sarm.pdb"
  "test_sarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
