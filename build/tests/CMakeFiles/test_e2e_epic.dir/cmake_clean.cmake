file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_epic.dir/test_e2e_epic.cpp.o"
  "CMakeFiles/test_e2e_epic.dir/test_e2e_epic.cpp.o.d"
  "test_e2e_epic"
  "test_e2e_epic.pdb"
  "test_e2e_epic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_epic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
