
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/cepic_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/cepic_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/cepic_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/asmtool/CMakeFiles/cepic_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cepic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mdes/CMakeFiles/cepic_mdes.dir/DependInfo.cmake"
  "/root/repo/build/src/sarm/CMakeFiles/cepic_sarm.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cepic_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cepic_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cepic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
