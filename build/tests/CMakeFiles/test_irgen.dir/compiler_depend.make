# Empty compiler generated dependencies file for test_irgen.
# This may be replaced when dependencies are built.
