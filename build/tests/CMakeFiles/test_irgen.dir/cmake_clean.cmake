file(REMOVE_RECURSE
  "CMakeFiles/test_irgen.dir/test_irgen.cpp.o"
  "CMakeFiles/test_irgen.dir/test_irgen.cpp.o.d"
  "test_irgen"
  "test_irgen.pdb"
  "test_irgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
