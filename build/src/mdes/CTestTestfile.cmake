# CMake generated Testfile for 
# Source directory: /root/repo/src/mdes
# Build directory: /root/repo/build/src/mdes
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
