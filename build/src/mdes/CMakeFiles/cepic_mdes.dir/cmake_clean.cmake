file(REMOVE_RECURSE
  "CMakeFiles/cepic_mdes.dir/mdes.cpp.o"
  "CMakeFiles/cepic_mdes.dir/mdes.cpp.o.d"
  "libcepic_mdes.a"
  "libcepic_mdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_mdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
