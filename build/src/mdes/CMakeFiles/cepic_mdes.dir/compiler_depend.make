# Empty compiler generated dependencies file for cepic_mdes.
# This may be replaced when dependencies are built.
