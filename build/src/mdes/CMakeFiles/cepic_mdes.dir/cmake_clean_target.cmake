file(REMOVE_RECURSE
  "libcepic_mdes.a"
)
