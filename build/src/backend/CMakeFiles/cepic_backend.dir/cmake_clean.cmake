file(REMOVE_RECURSE
  "CMakeFiles/cepic_backend.dir/emit.cpp.o"
  "CMakeFiles/cepic_backend.dir/emit.cpp.o.d"
  "CMakeFiles/cepic_backend.dir/lower.cpp.o"
  "CMakeFiles/cepic_backend.dir/lower.cpp.o.d"
  "CMakeFiles/cepic_backend.dir/regalloc.cpp.o"
  "CMakeFiles/cepic_backend.dir/regalloc.cpp.o.d"
  "CMakeFiles/cepic_backend.dir/schedule.cpp.o"
  "CMakeFiles/cepic_backend.dir/schedule.cpp.o.d"
  "libcepic_backend.a"
  "libcepic_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
