# Empty compiler generated dependencies file for cepic_backend.
# This may be replaced when dependencies are built.
