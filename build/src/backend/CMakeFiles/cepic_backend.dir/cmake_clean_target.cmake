file(REMOVE_RECURSE
  "libcepic_backend.a"
)
