file(REMOVE_RECURSE
  "CMakeFiles/cepic_core.dir/config.cpp.o"
  "CMakeFiles/cepic_core.dir/config.cpp.o.d"
  "CMakeFiles/cepic_core.dir/custom.cpp.o"
  "CMakeFiles/cepic_core.dir/custom.cpp.o.d"
  "CMakeFiles/cepic_core.dir/encoding.cpp.o"
  "CMakeFiles/cepic_core.dir/encoding.cpp.o.d"
  "CMakeFiles/cepic_core.dir/eval.cpp.o"
  "CMakeFiles/cepic_core.dir/eval.cpp.o.d"
  "CMakeFiles/cepic_core.dir/instruction.cpp.o"
  "CMakeFiles/cepic_core.dir/instruction.cpp.o.d"
  "CMakeFiles/cepic_core.dir/isa.cpp.o"
  "CMakeFiles/cepic_core.dir/isa.cpp.o.d"
  "CMakeFiles/cepic_core.dir/memory.cpp.o"
  "CMakeFiles/cepic_core.dir/memory.cpp.o.d"
  "CMakeFiles/cepic_core.dir/program.cpp.o"
  "CMakeFiles/cepic_core.dir/program.cpp.o.d"
  "libcepic_core.a"
  "libcepic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
