file(REMOVE_RECURSE
  "libcepic_core.a"
)
