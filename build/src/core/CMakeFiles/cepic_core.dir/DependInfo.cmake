
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/cepic_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/config.cpp.o.d"
  "/root/repo/src/core/custom.cpp" "src/core/CMakeFiles/cepic_core.dir/custom.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/custom.cpp.o.d"
  "/root/repo/src/core/encoding.cpp" "src/core/CMakeFiles/cepic_core.dir/encoding.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/encoding.cpp.o.d"
  "/root/repo/src/core/eval.cpp" "src/core/CMakeFiles/cepic_core.dir/eval.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/eval.cpp.o.d"
  "/root/repo/src/core/instruction.cpp" "src/core/CMakeFiles/cepic_core.dir/instruction.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/instruction.cpp.o.d"
  "/root/repo/src/core/isa.cpp" "src/core/CMakeFiles/cepic_core.dir/isa.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/isa.cpp.o.d"
  "/root/repo/src/core/memory.cpp" "src/core/CMakeFiles/cepic_core.dir/memory.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/memory.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/cepic_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/cepic_core.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
