# Empty compiler generated dependencies file for cepic_core.
# This may be replaced when dependencies are built.
