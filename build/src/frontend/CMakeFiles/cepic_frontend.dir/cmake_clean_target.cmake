file(REMOVE_RECURSE
  "libcepic_frontend.a"
)
