file(REMOVE_RECURSE
  "CMakeFiles/cepic_frontend.dir/irgen.cpp.o"
  "CMakeFiles/cepic_frontend.dir/irgen.cpp.o.d"
  "CMakeFiles/cepic_frontend.dir/lexer.cpp.o"
  "CMakeFiles/cepic_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/cepic_frontend.dir/parser.cpp.o"
  "CMakeFiles/cepic_frontend.dir/parser.cpp.o.d"
  "libcepic_frontend.a"
  "libcepic_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
