# Empty compiler generated dependencies file for cepic_frontend.
# This may be replaced when dependencies are built.
