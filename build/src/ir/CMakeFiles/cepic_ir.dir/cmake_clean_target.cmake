file(REMOVE_RECURSE
  "libcepic_ir.a"
)
