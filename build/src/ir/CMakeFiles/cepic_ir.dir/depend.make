# Empty dependencies file for cepic_ir.
# This may be replaced when dependencies are built.
