file(REMOVE_RECURSE
  "CMakeFiles/cepic_ir.dir/interp.cpp.o"
  "CMakeFiles/cepic_ir.dir/interp.cpp.o.d"
  "CMakeFiles/cepic_ir.dir/ir.cpp.o"
  "CMakeFiles/cepic_ir.dir/ir.cpp.o.d"
  "CMakeFiles/cepic_ir.dir/print.cpp.o"
  "CMakeFiles/cepic_ir.dir/print.cpp.o.d"
  "CMakeFiles/cepic_ir.dir/verify.cpp.o"
  "CMakeFiles/cepic_ir.dir/verify.cpp.o.d"
  "libcepic_ir.a"
  "libcepic_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
