file(REMOVE_RECURSE
  "CMakeFiles/cepic_fpga.dir/model.cpp.o"
  "CMakeFiles/cepic_fpga.dir/model.cpp.o.d"
  "libcepic_fpga.a"
  "libcepic_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
