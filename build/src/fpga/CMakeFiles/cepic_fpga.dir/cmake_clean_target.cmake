file(REMOVE_RECURSE
  "libcepic_fpga.a"
)
