# Empty dependencies file for cepic_fpga.
# This may be replaced when dependencies are built.
