file(REMOVE_RECURSE
  "libcepic_driver.a"
)
