file(REMOVE_RECURSE
  "CMakeFiles/cepic_driver.dir/driver.cpp.o"
  "CMakeFiles/cepic_driver.dir/driver.cpp.o.d"
  "libcepic_driver.a"
  "libcepic_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
