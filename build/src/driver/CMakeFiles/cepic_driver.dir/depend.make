# Empty dependencies file for cepic_driver.
# This may be replaced when dependencies are built.
