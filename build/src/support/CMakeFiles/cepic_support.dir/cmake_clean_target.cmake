file(REMOVE_RECURSE
  "libcepic_support.a"
)
