# Empty dependencies file for cepic_support.
# This may be replaced when dependencies are built.
