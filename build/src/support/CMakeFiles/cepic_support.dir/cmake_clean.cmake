file(REMOVE_RECURSE
  "CMakeFiles/cepic_support.dir/text.cpp.o"
  "CMakeFiles/cepic_support.dir/text.cpp.o.d"
  "libcepic_support.a"
  "libcepic_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
