
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sarm/codegen.cpp" "src/sarm/CMakeFiles/cepic_sarm.dir/codegen.cpp.o" "gcc" "src/sarm/CMakeFiles/cepic_sarm.dir/codegen.cpp.o.d"
  "/root/repo/src/sarm/isa.cpp" "src/sarm/CMakeFiles/cepic_sarm.dir/isa.cpp.o" "gcc" "src/sarm/CMakeFiles/cepic_sarm.dir/isa.cpp.o.d"
  "/root/repo/src/sarm/sim.cpp" "src/sarm/CMakeFiles/cepic_sarm.dir/sim.cpp.o" "gcc" "src/sarm/CMakeFiles/cepic_sarm.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cepic_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cepic_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cepic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
