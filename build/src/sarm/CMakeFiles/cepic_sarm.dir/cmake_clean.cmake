file(REMOVE_RECURSE
  "CMakeFiles/cepic_sarm.dir/codegen.cpp.o"
  "CMakeFiles/cepic_sarm.dir/codegen.cpp.o.d"
  "CMakeFiles/cepic_sarm.dir/isa.cpp.o"
  "CMakeFiles/cepic_sarm.dir/isa.cpp.o.d"
  "CMakeFiles/cepic_sarm.dir/sim.cpp.o"
  "CMakeFiles/cepic_sarm.dir/sim.cpp.o.d"
  "libcepic_sarm.a"
  "libcepic_sarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_sarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
