# Empty dependencies file for cepic_sarm.
# This may be replaced when dependencies are built.
