file(REMOVE_RECURSE
  "libcepic_sarm.a"
)
