file(REMOVE_RECURSE
  "libcepic_sim.a"
)
