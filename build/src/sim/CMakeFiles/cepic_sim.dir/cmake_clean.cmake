file(REMOVE_RECURSE
  "CMakeFiles/cepic_sim.dir/simulator.cpp.o"
  "CMakeFiles/cepic_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/cepic_sim.dir/stats.cpp.o"
  "CMakeFiles/cepic_sim.dir/stats.cpp.o.d"
  "libcepic_sim.a"
  "libcepic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
