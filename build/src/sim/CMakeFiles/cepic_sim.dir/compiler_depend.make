# Empty compiler generated dependencies file for cepic_sim.
# This may be replaced when dependencies are built.
