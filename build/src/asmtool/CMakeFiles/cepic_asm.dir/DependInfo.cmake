
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmtool/assembler.cpp" "src/asmtool/CMakeFiles/cepic_asm.dir/assembler.cpp.o" "gcc" "src/asmtool/CMakeFiles/cepic_asm.dir/assembler.cpp.o.d"
  "/root/repo/src/asmtool/disasm.cpp" "src/asmtool/CMakeFiles/cepic_asm.dir/disasm.cpp.o" "gcc" "src/asmtool/CMakeFiles/cepic_asm.dir/disasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cepic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mdes/CMakeFiles/cepic_mdes.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
