file(REMOVE_RECURSE
  "CMakeFiles/cepic_asm.dir/assembler.cpp.o"
  "CMakeFiles/cepic_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/cepic_asm.dir/disasm.cpp.o"
  "CMakeFiles/cepic_asm.dir/disasm.cpp.o.d"
  "libcepic_asm.a"
  "libcepic_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
