# Empty compiler generated dependencies file for cepic_asm.
# This may be replaced when dependencies are built.
