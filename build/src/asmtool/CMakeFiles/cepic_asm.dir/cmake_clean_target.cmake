file(REMOVE_RECURSE
  "libcepic_asm.a"
)
