file(REMOVE_RECURSE
  "CMakeFiles/cepic_workloads.dir/aes.cpp.o"
  "CMakeFiles/cepic_workloads.dir/aes.cpp.o.d"
  "CMakeFiles/cepic_workloads.dir/dct.cpp.o"
  "CMakeFiles/cepic_workloads.dir/dct.cpp.o.d"
  "CMakeFiles/cepic_workloads.dir/dijkstra.cpp.o"
  "CMakeFiles/cepic_workloads.dir/dijkstra.cpp.o.d"
  "CMakeFiles/cepic_workloads.dir/sha.cpp.o"
  "CMakeFiles/cepic_workloads.dir/sha.cpp.o.d"
  "libcepic_workloads.a"
  "libcepic_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
