# Empty compiler generated dependencies file for cepic_workloads.
# This may be replaced when dependencies are built.
