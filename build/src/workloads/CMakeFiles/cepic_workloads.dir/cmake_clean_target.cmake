file(REMOVE_RECURSE
  "libcepic_workloads.a"
)
