
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aes.cpp" "src/workloads/CMakeFiles/cepic_workloads.dir/aes.cpp.o" "gcc" "src/workloads/CMakeFiles/cepic_workloads.dir/aes.cpp.o.d"
  "/root/repo/src/workloads/dct.cpp" "src/workloads/CMakeFiles/cepic_workloads.dir/dct.cpp.o" "gcc" "src/workloads/CMakeFiles/cepic_workloads.dir/dct.cpp.o.d"
  "/root/repo/src/workloads/dijkstra.cpp" "src/workloads/CMakeFiles/cepic_workloads.dir/dijkstra.cpp.o" "gcc" "src/workloads/CMakeFiles/cepic_workloads.dir/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/sha.cpp" "src/workloads/CMakeFiles/cepic_workloads.dir/sha.cpp.o" "gcc" "src/workloads/CMakeFiles/cepic_workloads.dir/sha.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
