file(REMOVE_RECURSE
  "CMakeFiles/cepic_opt.dir/cfg.cpp.o"
  "CMakeFiles/cepic_opt.dir/cfg.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/constfold.cpp.o"
  "CMakeFiles/cepic_opt.dir/constfold.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/copyprop.cpp.o"
  "CMakeFiles/cepic_opt.dir/copyprop.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/cse.cpp.o"
  "CMakeFiles/cepic_opt.dir/cse.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/custom_candidates.cpp.o"
  "CMakeFiles/cepic_opt.dir/custom_candidates.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/dce.cpp.o"
  "CMakeFiles/cepic_opt.dir/dce.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/ifconvert.cpp.o"
  "CMakeFiles/cepic_opt.dir/ifconvert.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/inline.cpp.o"
  "CMakeFiles/cepic_opt.dir/inline.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/licm.cpp.o"
  "CMakeFiles/cepic_opt.dir/licm.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/pipeline.cpp.o"
  "CMakeFiles/cepic_opt.dir/pipeline.cpp.o.d"
  "CMakeFiles/cepic_opt.dir/simplify_cfg.cpp.o"
  "CMakeFiles/cepic_opt.dir/simplify_cfg.cpp.o.d"
  "libcepic_opt.a"
  "libcepic_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
