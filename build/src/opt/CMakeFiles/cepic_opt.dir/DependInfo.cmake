
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cfg.cpp" "src/opt/CMakeFiles/cepic_opt.dir/cfg.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/cfg.cpp.o.d"
  "/root/repo/src/opt/constfold.cpp" "src/opt/CMakeFiles/cepic_opt.dir/constfold.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/constfold.cpp.o.d"
  "/root/repo/src/opt/copyprop.cpp" "src/opt/CMakeFiles/cepic_opt.dir/copyprop.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/copyprop.cpp.o.d"
  "/root/repo/src/opt/cse.cpp" "src/opt/CMakeFiles/cepic_opt.dir/cse.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/cse.cpp.o.d"
  "/root/repo/src/opt/custom_candidates.cpp" "src/opt/CMakeFiles/cepic_opt.dir/custom_candidates.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/custom_candidates.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/cepic_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/ifconvert.cpp" "src/opt/CMakeFiles/cepic_opt.dir/ifconvert.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/ifconvert.cpp.o.d"
  "/root/repo/src/opt/inline.cpp" "src/opt/CMakeFiles/cepic_opt.dir/inline.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/inline.cpp.o.d"
  "/root/repo/src/opt/licm.cpp" "src/opt/CMakeFiles/cepic_opt.dir/licm.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/licm.cpp.o.d"
  "/root/repo/src/opt/pipeline.cpp" "src/opt/CMakeFiles/cepic_opt.dir/pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/pipeline.cpp.o.d"
  "/root/repo/src/opt/simplify_cfg.cpp" "src/opt/CMakeFiles/cepic_opt.dir/simplify_cfg.cpp.o" "gcc" "src/opt/CMakeFiles/cepic_opt.dir/simplify_cfg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cepic_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cepic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cepic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
