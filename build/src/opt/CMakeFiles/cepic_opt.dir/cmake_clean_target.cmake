file(REMOVE_RECURSE
  "libcepic_opt.a"
)
