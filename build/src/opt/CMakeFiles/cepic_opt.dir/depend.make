# Empty dependencies file for cepic_opt.
# This may be replaced when dependencies are built.
