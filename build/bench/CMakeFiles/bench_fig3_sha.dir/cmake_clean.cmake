file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sha.dir/bench_fig3_sha.cpp.o"
  "CMakeFiles/bench_fig3_sha.dir/bench_fig3_sha.cpp.o.d"
  "bench_fig3_sha"
  "bench_fig3_sha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
