file(REMOVE_RECURSE
  "CMakeFiles/bench_toolspeed.dir/bench_toolspeed.cpp.o"
  "CMakeFiles/bench_toolspeed.dir/bench_toolspeed.cpp.o.d"
  "bench_toolspeed"
  "bench_toolspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toolspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
