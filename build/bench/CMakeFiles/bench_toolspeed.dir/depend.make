# Empty dependencies file for bench_toolspeed.
# This may be replaced when dependencies are built.
