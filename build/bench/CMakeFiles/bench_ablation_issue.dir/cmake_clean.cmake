file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_issue.dir/bench_ablation_issue.cpp.o"
  "CMakeFiles/bench_ablation_issue.dir/bench_ablation_issue.cpp.o.d"
  "bench_ablation_issue"
  "bench_ablation_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
