# Empty compiler generated dependencies file for bench_ablation_issue.
# This may be replaced when dependencies are built.
