file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dijkstra.dir/bench_fig5_dijkstra.cpp.o"
  "CMakeFiles/bench_fig5_dijkstra.dir/bench_fig5_dijkstra.cpp.o.d"
  "bench_fig5_dijkstra"
  "bench_fig5_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
