file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_dct.dir/bench_fig4_dct.cpp.o"
  "CMakeFiles/bench_fig4_dct.dir/bench_fig4_dct.cpp.o.d"
  "bench_fig4_dct"
  "bench_fig4_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
