# Empty dependencies file for bench_fig4_dct.
# This may be replaced when dependencies are built.
