# Empty compiler generated dependencies file for bench_ablation_custom.
# This may be replaced when dependencies are built.
