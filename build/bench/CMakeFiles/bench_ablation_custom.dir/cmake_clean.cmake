file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_custom.dir/bench_ablation_custom.cpp.o"
  "CMakeFiles/bench_ablation_custom.dir/bench_ablation_custom.cpp.o.d"
  "bench_ablation_custom"
  "bench_ablation_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
