file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ifconv.dir/bench_ablation_ifconv.cpp.o"
  "CMakeFiles/bench_ablation_ifconv.dir/bench_ablation_ifconv.cpp.o.d"
  "bench_ablation_ifconv"
  "bench_ablation_ifconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ifconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
