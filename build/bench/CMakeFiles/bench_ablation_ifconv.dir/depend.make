# Empty dependencies file for bench_ablation_ifconv.
# This may be replaced when dependencies are built.
