file(REMOVE_RECURSE
  "CMakeFiles/cepic-asm.dir/cepic_asm.cpp.o"
  "CMakeFiles/cepic-asm.dir/cepic_asm.cpp.o.d"
  "cepic-asm"
  "cepic-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
