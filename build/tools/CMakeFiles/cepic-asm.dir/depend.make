# Empty dependencies file for cepic-asm.
# This may be replaced when dependencies are built.
