file(REMOVE_RECURSE
  "CMakeFiles/cepic-sim.dir/cepic_sim.cpp.o"
  "CMakeFiles/cepic-sim.dir/cepic_sim.cpp.o.d"
  "cepic-sim"
  "cepic-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
