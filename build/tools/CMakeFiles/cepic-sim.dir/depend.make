# Empty dependencies file for cepic-sim.
# This may be replaced when dependencies are built.
