file(REMOVE_RECURSE
  "CMakeFiles/cepic-explore.dir/cepic_explore.cpp.o"
  "CMakeFiles/cepic-explore.dir/cepic_explore.cpp.o.d"
  "cepic-explore"
  "cepic-explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic-explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
