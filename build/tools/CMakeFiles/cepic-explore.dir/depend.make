# Empty dependencies file for cepic-explore.
# This may be replaced when dependencies are built.
