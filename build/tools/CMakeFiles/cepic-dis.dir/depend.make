# Empty dependencies file for cepic-dis.
# This may be replaced when dependencies are built.
