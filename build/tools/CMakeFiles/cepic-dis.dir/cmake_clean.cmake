file(REMOVE_RECURSE
  "CMakeFiles/cepic-dis.dir/cepic_dis.cpp.o"
  "CMakeFiles/cepic-dis.dir/cepic_dis.cpp.o.d"
  "cepic-dis"
  "cepic-dis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic-dis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
