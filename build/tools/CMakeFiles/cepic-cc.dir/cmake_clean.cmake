file(REMOVE_RECURSE
  "CMakeFiles/cepic-cc.dir/cepic_cc.cpp.o"
  "CMakeFiles/cepic-cc.dir/cepic_cc.cpp.o.d"
  "cepic-cc"
  "cepic-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepic-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
