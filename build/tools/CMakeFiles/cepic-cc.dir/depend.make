# Empty dependencies file for cepic-cc.
# This may be replaced when dependencies are built.
