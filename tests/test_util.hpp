// Shared helpers for CEPIC test suites: terse instruction builders and a
// bundle-list-to-Program constructor so simulator microtests read like
// annotated assembly.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/instruction.hpp"
#include "core/program.hpp"

namespace cepic::testutil {

inline Operand R(std::uint32_t i) { return Operand::r(i); }
inline Operand I(std::int32_t v) { return Operand::imm(v); }

inline Instruction op3(Op o, std::uint32_t d, Operand a, Operand b,
                       std::uint32_t pred = 0) {
  return Instruction::make(o, d, a, b, pred);
}

inline Instruction add(std::uint32_t d, Operand a, Operand b,
                       std::uint32_t pred = 0) {
  return op3(Op::ADD, d, a, b, pred);
}
inline Instruction mov(std::uint32_t d, Operand a, std::uint32_t pred = 0) {
  return Instruction::make(Op::MOV, d, a, {}, pred);
}
inline Instruction cmpp(Op cond, std::uint32_t p_true, std::uint32_t p_false,
                        Operand a, Operand b) {
  return Instruction::make(cond, p_true, a, b, 0, p_false);
}
inline Instruction ldw(std::uint32_t d, std::uint32_t base, std::int32_t off,
                       std::uint32_t pred = 0) {
  return Instruction::make(Op::LDW, d, R(base), I(off), pred);
}
inline Instruction stw(std::uint32_t value, std::uint32_t base,
                       std::int32_t off, std::uint32_t pred = 0) {
  return Instruction::make(Op::STW, value, R(base), I(off), pred);
}
inline Instruction pbr(std::uint32_t b, std::int32_t target) {
  return Instruction::make(Op::PBR, b, I(target));
}
inline Instruction brct(std::uint32_t b, std::uint32_t p) {
  return Instruction::make(Op::BRCT, 0, R(b), R(p));
}
inline Instruction brcf(std::uint32_t b, std::uint32_t p) {
  return Instruction::make(Op::BRCF, 0, R(b), R(p));
}
inline Instruction bru(std::uint32_t b) {
  return Instruction::make(Op::BRU, 0, R(b));
}
inline Instruction out(Operand v) {
  return Instruction::make(Op::OUT, 0, v);
}
inline Instruction halt() { return Instruction::halt(); }

/// Build a program from explicit bundles (each inner list ≤ issue width).
inline Program make_program(const ProcessorConfig& cfg,
                            std::initializer_list<std::vector<Instruction>>
                                bundles) {
  Program p;
  p.config = cfg;
  for (const auto& b : bundles) {
    p.append_bundle(std::span<const Instruction>(b.data(), b.size()));
  }
  return p;
}

}  // namespace cepic::testutil
