// Shared helpers for CEPIC test suites: terse instruction builders, a
// bundle-list-to-Program constructor so simulator microtests read like
// annotated assembly, and the seeded random instruction/program
// generators shared by the round-trip fuzz and the fast-vs-interpretive
// simulator differential suites.
#pragma once

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "core/instruction.hpp"
#include "core/program.hpp"
#include "ir/ir.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace cepic::testutil {

inline Operand R(std::uint32_t i) { return Operand::r(i); }
inline Operand I(std::int32_t v) { return Operand::imm(v); }

inline Instruction op3(Op o, std::uint32_t d, Operand a, Operand b,
                       std::uint32_t pred = 0) {
  return Instruction::make(o, d, a, b, pred);
}

inline Instruction add(std::uint32_t d, Operand a, Operand b,
                       std::uint32_t pred = 0) {
  return op3(Op::ADD, d, a, b, pred);
}
inline Instruction mov(std::uint32_t d, Operand a, std::uint32_t pred = 0) {
  return Instruction::make(Op::MOV, d, a, {}, pred);
}
inline Instruction cmpp(Op cond, std::uint32_t p_true, std::uint32_t p_false,
                        Operand a, Operand b) {
  return Instruction::make(cond, p_true, a, b, 0, p_false);
}
inline Instruction ldw(std::uint32_t d, std::uint32_t base, std::int32_t off,
                       std::uint32_t pred = 0) {
  return Instruction::make(Op::LDW, d, R(base), I(off), pred);
}
inline Instruction stw(std::uint32_t value, std::uint32_t base,
                       std::int32_t off, std::uint32_t pred = 0) {
  return Instruction::make(Op::STW, value, R(base), I(off), pred);
}
inline Instruction pbr(std::uint32_t b, std::int32_t target) {
  return Instruction::make(Op::PBR, b, I(target));
}
inline Instruction brct(std::uint32_t b, std::uint32_t p) {
  return Instruction::make(Op::BRCT, 0, R(b), R(p));
}
inline Instruction brcf(std::uint32_t b, std::uint32_t p) {
  return Instruction::make(Op::BRCF, 0, R(b), R(p));
}
inline Instruction bru(std::uint32_t b) {
  return Instruction::make(Op::BRU, 0, R(b));
}
inline Instruction out(Operand v) {
  return Instruction::make(Op::OUT, 0, v);
}
inline Instruction halt() { return Instruction::halt(); }

/// Build a program from explicit bundles (each inner list ≤ issue width).
inline Program make_program(const ProcessorConfig& cfg,
                            std::initializer_list<std::vector<Instruction>>
                                bundles) {
  Program p;
  p.config = cfg;
  for (const auto& b : bundles) {
    p.append_bundle(std::span<const Instruction>(b.data(), b.size()));
  }
  return p;
}

// --- seeded random program generation (fuzz suites) -------------------

inline unsigned file_count(const ProcessorConfig& cfg, RegFile f) {
  switch (f) {
    case RegFile::Gpr: return cfg.num_gprs;
    case RegFile::Pred: return cfg.num_preds;
    case RegFile::Btr: return cfg.num_btrs;
    default: return 1;
  }
}

inline RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    default: return RegFile::None;
  }
}

inline Operand random_src(Prng& rng, const ProcessorConfig& cfg,
                          const InstructionFormat& fmt, SrcSpec spec,
                          bool zext) {
  const auto random_lit = [&]() -> Operand {
    if (zext) {
      return Operand::imm(static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint32_t>(1u << fmt.src_bits))));
    }
    const std::int32_t hi = (std::int32_t{1} << (fmt.src_bits - 1)) - 1;
    return Operand::imm(rng.next_in(-hi - 1, hi));
  };
  switch (spec) {
    case SrcSpec::None:
      return Operand::none();
    case SrcSpec::Gpr:
    case SrcSpec::Pred:
    case SrcSpec::Btr:
      return Operand::r(rng.next_below(file_count(cfg, src_file(spec))));
    case SrcSpec::LitOnly:
      return random_lit();
    case SrcSpec::GprOrLit:
      if (rng.next_below(2) == 0) {
        return Operand::r(rng.next_below(cfg.num_gprs));
      }
      return random_lit();
  }
  return Operand::none();
}

/// A uniformly random instruction that passes validate_instruction for
/// `cfg` (rejection-sampled; ops the configuration disables — trimmed
/// ALU features, unbound custom slots — simply never survive).
inline Instruction random_instruction(Prng& rng, const ProcessorConfig& cfg) {
  const InstructionFormat fmt = cfg.format();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Op op =
        static_cast<Op>(rng.next_below(static_cast<std::uint32_t>(kNumOps)));
    const OpInfo& info = op_info(op);
    Instruction inst;
    inst.op = op;
    if (info.dest1 != RegFile::None) {
      inst.dest1 = rng.next_below(file_count(cfg, info.dest1));
    }
    if (info.dest2 != RegFile::None) {
      inst.dest2 = rng.next_below(file_count(cfg, info.dest2));
    }
    inst.src1 = random_src(rng, cfg, fmt, info.src1, info.literal_zero_extends);
    inst.src2 = random_src(rng, cfg, fmt, info.src2, info.literal_zero_extends);
    inst.pred = rng.next_below(cfg.num_preds);
    if (validate_instruction(inst, cfg).empty()) return inst;
  }
  ADD_FAILURE() << "could not sample a valid instruction in 1000 attempts";
  return Instruction::halt();
}

/// Random program: one random instruction per bundle (so no
/// bundle-level functional-unit conflicts arise by construction),
/// HALT-terminated. Branch-target literals are clamped to real bundle
/// addresses.
inline Program random_program(Prng& rng, const ProcessorConfig& cfg) {
  Program p;
  p.config = cfg;
  const int bundles = rng.next_in(4, 12);
  for (int b = 0; b < bundles; ++b) {
    Instruction inst = random_instruction(rng, cfg);
    if (inst.op == Op::PBR) {
      inst.src1 = Operand::imm(
          static_cast<std::int32_t>(rng.next_below(bundles + 1)));
    }
    // A guarded NOP is semantically a NOP; the disassembler prints NOP
    // slots in canonical (unguarded) form, so generate them that way.
    if (inst.is_nop()) inst = Instruction::nop();
    p.append_bundle({&inst, 1});
  }
  const Instruction halt = Instruction::halt();
  p.append_bundle({&halt, 1});
  return p;
}

// --- seeded random IR modules (CEPX round-trip fuzz) ------------------

/// A register already defined at this point, or an immediate when none
/// exist yet.
inline ir::Value random_ir_value(Prng& rng, ir::VReg next_vreg) {
  if (next_vreg > 1 && rng.next_below(2) == 0) {
    return ir::Value::r(
        static_cast<ir::VReg>(rng.next_in(1, static_cast<int>(next_vreg) - 1)));
  }
  return ir::Value::i(rng.next_in(-9999, 9999));
}

/// Random well-formed ir::Module: every block ends in one terminator,
/// block and global references are in range, and next_vreg is kept at
/// max-used-vreg + 1 — the invariant the text form preserves (the IR
/// printer does not write next_vreg; the parser reconstructs it).
/// Exercises every printable instruction shape: guards (plain and
/// negated), loads/stores, gaddr/faddr, calls with and without a
/// destination, out, and all three terminators.
inline ir::Module random_module(Prng& rng) {
  ir::Module m;
  const int num_globals = rng.next_in(0, 3);
  for (int g = 0; g < num_globals; ++g) {
    ir::Global global;
    global.name = cat("gv", g);
    global.size_words = static_cast<std::uint32_t>(rng.next_in(1, 6));
    const int inits = rng.next_in(0, static_cast<int>(global.size_words));
    for (int i = 0; i < inits; ++i) global.init_words.push_back(rng.next_u32());
    m.globals.push_back(std::move(global));
  }

  const int num_fns = rng.next_in(1, 3);
  for (int f = 0; f < num_fns; ++f) {
    ir::Function fn;
    fn.name = f == 0 ? "main" : cat("fn", f);
    fn.returns_value = rng.next_below(2) == 0;
    fn.frame_bytes = 4u * static_cast<std::uint32_t>(rng.next_in(0, 8));
    ir::VReg next = 1;
    const int params = rng.next_in(0, 3);
    for (int p = 0; p < params; ++p) fn.params.push_back(next++);

    const int num_blocks = rng.next_in(1, 4);
    for (int b = 0; b < num_blocks; ++b) {
      ir::BasicBlock block;
      if (rng.next_below(2) == 0) block.label = cat("L", b);
      const int body = rng.next_in(0, 5);
      for (int i = 0; i < body; ++i) {
        ir::IrInst inst;
        if (next > 1 && rng.next_below(4) == 0) {
          inst.guard = static_cast<ir::VReg>(
              rng.next_in(1, static_cast<int>(next) - 1));
          inst.guard_negate = rng.next_below(2) == 0;
        }
        switch (rng.next_below(8)) {
          case 0:  // load
            inst.op = rng.next_below(2) == 0 ? ir::IrOp::LoadW
                                             : ir::IrOp::LoadBU;
            inst.dst = next++;
            inst.a = random_ir_value(rng, next);
            inst.b = random_ir_value(rng, next);
            break;
          case 1:  // store
            inst.op = rng.next_below(2) == 0 ? ir::IrOp::StoreW
                                             : ir::IrOp::StoreB;
            inst.a = random_ir_value(rng, next);
            inst.b = random_ir_value(rng, next);
            inst.c = random_ir_value(rng, next);
            break;
          case 2:
            if (m.globals.empty()) {
              inst.op = ir::IrOp::Out;
              inst.a = random_ir_value(rng, next);
              break;
            }
            inst.op = ir::IrOp::GlobalAddr;
            inst.dst = next++;
            inst.global_index =
                rng.next_in(0, static_cast<int>(m.globals.size()) - 1);
            break;
          case 3:
            inst.op = ir::IrOp::FrameAddr;
            inst.dst = next++;
            inst.a = ir::Value::i(4 * rng.next_in(0, 7));
            break;
          case 4: {  // call, with or without a destination
            inst.op = ir::IrOp::Call;
            // Calls are never guarded: ir::verify_module rejects them
            // (the backend has no guarded-call lowering).
            inst.guard = ir::kNoVReg;
            inst.guard_negate = false;
            inst.callee = rng.next_below(2) == 0 ? "fn1" : "helper";
            if (rng.next_below(2) == 0) inst.dst = next++;
            const int argc = rng.next_in(0, 3);
            for (int a = 0; a < argc; ++a) {
              inst.args.push_back(random_ir_value(rng, next));
            }
            break;
          }
          case 5:
            inst.op = ir::IrOp::Out;
            inst.a = random_ir_value(rng, next);
            break;
          case 6:
            inst.op = ir::IrOp::Mov;
            inst.dst = next++;
            inst.a = random_ir_value(rng, next);
            break;
          default: {  // binary ALU / comparison
            constexpr ir::IrOp kBinary[] = {
                ir::IrOp::Add,   ir::IrOp::Sub,   ir::IrOp::Mul,
                ir::IrOp::Div,   ir::IrOp::And,   ir::IrOp::Xor,
                ir::IrOp::Shl,   ir::IrOp::Min,   ir::IrOp::CmpEq,
                ir::IrOp::CmpLt, ir::IrOp::CmpGeU};
            inst.op = kBinary[rng.next_below(std::size(kBinary))];
            inst.dst = next++;
            inst.a = random_ir_value(rng, next);
            inst.b = random_ir_value(rng, next);
            break;
          }
        }
        block.insts.push_back(std::move(inst));
      }

      ir::IrInst term;
      const int last = num_blocks - 1;
      if (b == last || rng.next_below(3) == 0) {
        term.op = ir::IrOp::Ret;
        if (fn.returns_value) term.a = random_ir_value(rng, next);
      } else if (next > 1 && rng.next_below(2) == 0) {
        term.op = ir::IrOp::CondBr;
        term.a = random_ir_value(rng, next);
        term.block_then = rng.next_in(0, last);
        term.block_else = rng.next_in(0, last);
      } else {
        term.op = ir::IrOp::Br;
        term.block_then = rng.next_in(0, last);
      }
      block.insts.push_back(std::move(term));
      fn.blocks.push_back(std::move(block));
    }
    fn.next_vreg = next;
    m.functions.push_back(std::move(fn));
  }
  return m;
}

struct NamedConfig {
  const char* name;
  ProcessorConfig cfg;
};

/// The customisation grid the fuzz suites sweep.
inline std::vector<NamedConfig> fuzz_configs() {
  std::vector<NamedConfig> cfgs;
  cfgs.push_back({"defaults", ProcessorConfig{}});
  {
    ProcessorConfig c;
    c.num_gprs = 16;
    c.num_preds = 4;
    c.num_btrs = 2;
    c.issue_width = 2;
    cfgs.push_back({"small_files", c});
  }
  {
    // The defaults already fill the 64-bit container exactly, so
    // "wider" here means more predicate/branch resources within it.
    ProcessorConfig c;
    c.num_gprs = 32;
    c.num_btrs = 64;  // index_bits(64) == 6, still inside the container
    c.issue_width = 1;
    cfgs.push_back({"btr_heavy", c});
  }
  {
    ProcessorConfig c;
    c.alu.has_div = false;
    c.alu.has_minmax = false;
    cfgs.push_back({"trimmed_alu", c});
  }
  {
    ProcessorConfig c;
    c.custom_ops = {"rotr"};
    cfgs.push_back({"custom_op", c});
  }
  for (const NamedConfig& nc : cfgs) nc.cfg.validate();
  return cfgs;
}

}  // namespace cepic::testutil
