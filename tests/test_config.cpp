#include <gtest/gtest.h>

#include "core/config.hpp"

namespace cepic {
namespace {

TEST(Config, DefaultMatchesPaperFormat) {
  // Paper Fig. 1: OPCODE(15) DEST1(6) DEST2(6) SRC1(16) SRC2(16) PRED(5).
  const ProcessorConfig cfg;
  cfg.validate();
  const InstructionFormat f = cfg.format();
  EXPECT_EQ(f.opcode_bits, 15u);
  EXPECT_EQ(f.dest_bits, 6u);
  EXPECT_EQ(f.src_bits, 16u);
  EXPECT_EQ(f.pred_bits, 5u);
  EXPECT_EQ(f.total_bits(), 64u);
}

TEST(Config, DefaultsMatchPaperParameters) {
  // Paper §3.3: defaults 4 ALUs, 64 GPRs, 32 predicate regs, 16 BTRs,
  // 32-bit datapath, 4 instructions per issue.
  const ProcessorConfig cfg;
  EXPECT_EQ(cfg.num_alus, 4u);
  EXPECT_EQ(cfg.num_gprs, 64u);
  EXPECT_EQ(cfg.num_preds, 32u);
  EXPECT_EQ(cfg.num_btrs, 16u);
  EXPECT_EQ(cfg.issue_width, 4u);
  EXPECT_EQ(cfg.datapath_width, 32u);
}

TEST(Config, FormatGrowsWithRegisterFile) {
  // Paper §3.3: >64 registers requires re-designing the format; our
  // format() widens the index fields automatically.
  ProcessorConfig cfg;
  cfg.num_gprs = 128;
  const InstructionFormat f = cfg.format();
  EXPECT_EQ(f.dest_bits, 7u);
  EXPECT_GT(f.total_bits(), 64u);  // no longer fits the 64-bit container
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Config, FieldOffsetsTile) {
  const InstructionFormat f = ProcessorConfig{}.format();
  EXPECT_EQ(f.pred_lo(), 0u);
  EXPECT_EQ(f.src2_lo(), 5u);
  EXPECT_EQ(f.src1_lo(), 21u);
  EXPECT_EQ(f.dest2_lo(), 37u);
  EXPECT_EQ(f.dest1_lo(), 43u);
  EXPECT_EQ(f.opcode_lo(), 49u);
  EXPECT_EQ(f.opcode_lo() + f.opcode_bits, 64u);
}

TEST(Config, ValidateRejectsBadIssueWidth) {
  ProcessorConfig cfg;
  cfg.issue_width = 5;  // memory bandwidth limits issue to 1..4
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.issue_width = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Config, ValidateRejectsBadAluCount) {
  ProcessorConfig cfg;
  cfg.num_alus = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.num_alus = 17;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Config, ValidateRejectsTooManyCustomOps) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"a", "b", "c", "d", "e"};
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Config, TextRoundtrip) {
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  cfg.num_gprs = 32;
  cfg.num_preds = 16;
  cfg.num_btrs = 8;
  cfg.issue_width = 3;
  cfg.datapath_width = 16;
  cfg.forwarding = false;
  cfg.unified_memory_contention = true;
  cfg.load_latency = 3;
  cfg.alu.has_div = false;
  cfg.custom_ops = {"rotr", "popc"};

  const ProcessorConfig back = ProcessorConfig::from_text(cfg.to_text());
  EXPECT_EQ(back, cfg);
}

TEST(Config, FromTextParsesCommentsAndSpacing) {
  const ProcessorConfig cfg = ProcessorConfig::from_text(
      "# a comment\n"
      "  num_alus   =  2  # trailing comment\n"
      "\n"
      "alu_has_div = off\n");
  EXPECT_EQ(cfg.num_alus, 2u);
  EXPECT_FALSE(cfg.alu.has_div);
}

TEST(Config, FromTextRejectsUnknownKey) {
  EXPECT_THROW(ProcessorConfig::from_text("bogus_key = 1\n"), ConfigError);
}

TEST(Config, FromTextRejectsMalformedLine) {
  EXPECT_THROW(ProcessorConfig::from_text("num_alus 4\n"), ConfigError);
  EXPECT_THROW(ProcessorConfig::from_text("num_alus = four\n"), ConfigError);
}

TEST(Config, FromTextValidates) {
  EXPECT_THROW(ProcessorConfig::from_text("issue_width = 9\n"), ConfigError);
}

// Parameterised sweep: every legal (alus, issue) combination validates
// and produces a format that fits the container.
class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(ConfigSweep, ValidConfigsProduceValidFormats) {
  ProcessorConfig cfg;
  cfg.num_alus = std::get<0>(GetParam());
  cfg.issue_width = std::get<1>(GetParam());
  cfg.validate();
  EXPECT_LE(cfg.format().total_bits(), 64u);
}

INSTANTIATE_TEST_SUITE_P(
    AlusByIssue, ConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace cepic
