// The dataflow framework: engine + the four concrete analyses with
// their stable printable results, the available-copies analysis that
// drives global copy propagation, and the IR lint rules.
#include <gtest/gtest.h>

#include "analysis/analyses.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/intervals.hpp"
#include "analysis/irlint.hpp"
#include "ir/parse.hpp"
#include "ir/verify.hpp"

namespace cepic::analysis {
namespace {

ir::Module parse(std::string_view text) {
  ir::Module m = ir::parse_module(text);
  ir::verify_module(m, /*require_main=*/false);
  return m;
}

// ---------------------------------------------------------------------
// BitSet

TEST(BitSet, SetTestResetAcrossWordBoundaries) {
  BitSet s(130);
  EXPECT_EQ(s.size(), 130u);
  EXPECT_FALSE(s.any());
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(129);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(129));
  EXPECT_FALSE(s.test(65));
  EXPECT_EQ(s.count(), 4u);
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 3u);
}

TEST(BitSet, SetAllRespectsTailMask) {
  BitSet s(70);
  s.set_all();
  EXPECT_EQ(s.count(), 70u);
  BitSet t(70);
  t.set_all();
  EXPECT_TRUE(s == t);
}

TEST(BitSet, IorIandReportChanges) {
  BitSet a(10), b(10);
  b.set(3);
  EXPECT_TRUE(a.ior(b));
  EXPECT_FALSE(a.ior(b));  // already a superset
  BitSet c(10);
  c.set(3);
  c.set(7);
  EXPECT_TRUE(c.iand(a));  // drops bit 7
  EXPECT_FALSE(c.iand(a));
  EXPECT_TRUE(c.test(3));
  EXPECT_FALSE(c.test(7));
}

// ---------------------------------------------------------------------
// CFG

TEST(Cfg, DiamondShape) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b2
.b1:
  %2 = 1
  br .b3
.b2:
  %2 = 2
  br .b3
.b3:
  ret %2
}
)");
  const Cfg cfg = Cfg::build(m.functions[0]);
  EXPECT_EQ(cfg.num_blocks(), 4);
  EXPECT_EQ(cfg.succs[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(cfg.succs[1], (std::vector<int>{3}));
  EXPECT_EQ(cfg.preds[3], (std::vector<int>{1, 2}));
  EXPECT_TRUE(cfg.reachable[3]);
  EXPECT_EQ(cfg.rpo[0], 0);
  EXPECT_EQ(cfg.rpo_index[0], 0);
  EXPECT_EQ(cfg.rpo.size(), 4u);
}

TEST(Cfg, UnreachableBlockExcludedFromRpo) {
  const ir::Module m = parse(R"(
void main() frame=0 {
.b0:
  ret
.b1:
  ret
}
)");
  const Cfg cfg = Cfg::build(m.functions[0]);
  EXPECT_FALSE(cfg.reachable[1]);
  EXPECT_EQ(cfg.rpo.size(), 1u);
  EXPECT_EQ(cfg.rpo_index[1], -1);
}

TEST(Cfg, CondBrWithEqualTargetsDeduplicates) {
  const ir::Module m = parse(R"(
void main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b1
.b1:
  ret
}
)");
  const Cfg cfg = Cfg::build(m.functions[0]);
  EXPECT_EQ(cfg.succs[0], (std::vector<int>{1}));
}

// ---------------------------------------------------------------------
// Dominators

TEST(Dominators, DiamondGolden) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b2
.b1:
  %2 = 1
  br .b3
.b2:
  %2 = 2
  br .b3
.b3:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const Cfg cfg = Cfg::build(fn);
  const Dominators dom = compute_dominators(fn, cfg);
  EXPECT_EQ(dom.to_string(fn),
            "dominators @main\n"
            "  .b0: idom=- dom={.b0}\n"
            "  .b1: idom=.b0 dom={.b0 .b1}\n"
            "  .b2: idom=.b0 dom={.b0 .b2}\n"
            "  .b3: idom=.b0 dom={.b0 .b3}\n");
  EXPECT_TRUE(dom.dominates(0, 3));
  EXPECT_FALSE(dom.dominates(1, 3));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  br .b1
.b1:
  condbr %1 ? .b2 : .b3
.b2:
  br .b1
.b3:
  ret %1
}
)");
  const ir::Function& fn = m.functions[0];
  const Dominators dom = compute_dominators(fn, Cfg::build(fn));
  EXPECT_TRUE(dom.dominates(1, 2));
  EXPECT_TRUE(dom.dominates(1, 3));
  EXPECT_EQ(dom.idom[2], 1);
  EXPECT_EQ(dom.idom[3], 1);
}

// ---------------------------------------------------------------------
// Liveness

TEST(Liveness, DiamondGolden) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b2
.b1:
  %2 = 1
  br .b3
.b2:
  %2 = 2
  br .b3
.b3:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const Liveness lv = compute_liveness(fn);
  EXPECT_EQ(lv.to_string(fn),
            "liveness @main\n"
            "  .b0: in=%1 out=-\n"
            "  .b1: in=- out=%2\n"
            "  .b2: in=- out=%2\n"
            "  .b3: in=%2 out=-\n");
}

TEST(Liveness, GuardedDefDoesNotKill) {
  // The old value of %2 can flow through the guarded mov, so %2 is live
  // into the block; the guard itself counts as a use.
  const ir::Module m = parse(R"(
int main(%1, %2) frame=0 {
.b0:
  [%1] %2 = 7
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const Liveness lv = compute_liveness(fn);
  EXPECT_TRUE(lv.live_in[0].test(1));
  EXPECT_TRUE(lv.live_in[0].test(2));
}

TEST(Liveness, UnguardedDefKills) {
  const ir::Module m = parse(R"(
int main(%2) frame=0 {
.b0:
  %2 = 7
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const Liveness lv = compute_liveness(fn);
  EXPECT_FALSE(lv.live_in[0].test(2));
}

// ---------------------------------------------------------------------
// Reaching definitions

TEST(ReachingDefs, DiamondGolden) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b2
.b1:
  %2 = 1
  br .b3
.b2:
  %2 = 2
  br .b3
.b3:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const ReachingDefs rd = compute_reaching_defs(fn, Cfg::build(fn));
  EXPECT_EQ(rd.to_string(fn),
            "reaching-defs @main\n"
            "  .b0: in={entry:%1 entry:%2}\n"
            "  .b1: in={entry:%1 entry:%2}\n"
            "  .b2: in={entry:%1 entry:%2}\n"
            "  .b3: in={entry:%1 .b1#0:%2 .b2#0:%2}\n");
  // %2 was written on every path into .b3: its entry def cannot reach.
  EXPECT_FALSE(rd.entry_def_reaches(fn, 3, 2));
  // %1 is a parameter: never "uninitialised".
  EXPECT_FALSE(rd.entry_def_reaches(fn, 3, 1));
}

TEST(ReachingDefs, GuardedDefDoesNotKillEntryDef) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  [%1] %2 = 7
  br .b1
.b1:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const ReachingDefs rd = compute_reaching_defs(fn, Cfg::build(fn));
  EXPECT_TRUE(rd.entry_def_reaches(fn, 1, 2));
}

// ---------------------------------------------------------------------
// Available copies

TEST(AvailableCopies, SurvivesOnlyOnAllPaths) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  %2 = %1
  condbr %1 ? .b1 : .b2
.b1:
  %3 = 5
  br .b3
.b2:
  %3 = 5
  %2 = 9
  br .b3
.b3:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const AvailableCopies ac =
      compute_available_copies(fn, Cfg::build(fn));
  EXPECT_EQ(ac.to_string(fn),
            "available-copies @main\n"
            "  .b0: in={}\n"
            "  .b1: in={%2=%1}\n"
            "  .b2: in={%2=%1}\n"
            "  .b3: in={%3=#5}\n");
}

TEST(AvailableCopies, RedefOfSourceKills) {
  // The redef of %1 is a non-copy op so it generates no fact of its
  // own; it must still kill the %2=%1 relation.
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  %2 = %1
  %1 = add %1, 1
  br .b1
.b1:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const AvailableCopies ac =
      compute_available_copies(fn, Cfg::build(fn));
  EXPECT_EQ(ac.avail_in[1].count(), 0u);
}

TEST(AvailableCopies, CopyRedefOfSourceGeneratesNewFact) {
  // When the killing redef is itself a copy, the old fact dies but the
  // new one (%1=#3) is available downstream.
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  %2 = %1
  %1 = 3
  br .b1
.b1:
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const AvailableCopies ac =
      compute_available_copies(fn, Cfg::build(fn));
  EXPECT_EQ(ac.to_string(fn),
            "available-copies @main\n"
            "  .b0: in={}\n"
            "  .b1: in={%1=#3}\n");
}

// ---------------------------------------------------------------------
// Intervals

TEST(Intervals, ConstantFoldingAndAlwaysTrueBranch) {
  const ir::Module m = parse(R"(
int main() frame=0 {
.b0:
  %1 = 5
  %2 = add %1, 2
  condbr %2 ? .b1 : .b2
.b1:
  ret 1
.b2:
  ret 0
}
)");
  const ir::Function& fn = m.functions[0];
  const Cfg cfg = Cfg::build(fn);
  const IntervalAnalysis ia = compute_intervals(m, fn, cfg);
  ASSERT_EQ(ia.branch_facts.size(), 1u);
  EXPECT_EQ(ia.branch_facts[0].block, 0);
  EXPECT_TRUE(ia.branch_facts[0].then_taken);
  EXPECT_TRUE(ia.executable[1]);
  EXPECT_FALSE(ia.executable[2]);
  // %2 == 7 on entry to .b1.
  EXPECT_EQ(ia.in[1][2], AbsVal::constant(7));
}

TEST(Intervals, NonParamVregsStartAtZero) {
  // The interpreter zero-initialises every non-param vreg; the analysis
  // models exactly that, so reading an unwritten vreg proves 0.
  const ir::Module m = parse(R"(
int main() frame=0 {
.b0:
  %2 = add %1, 3
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const IntervalAnalysis ia = compute_intervals(m, fn, Cfg::build(fn));
  EXPECT_EQ(ia.out[0][2], AbsVal::constant(3));
}

TEST(Intervals, GuardFactAndJoinOnUnknownGuard) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  %2 = 0
  [%2] %3 = 9
  [%1] %4 = 9
  ret %3
}
)");
  const ir::Function& fn = m.functions[0];
  const IntervalAnalysis ia = compute_intervals(m, fn, Cfg::build(fn));
  // Guard %2 is provably 0: the def of %3 never commits.
  ASSERT_FALSE(ia.guard_facts.empty());
  bool saw_static_guard = false;
  for (const auto& f : ia.guard_facts) {
    if (f.block == 0 && f.inst == 1) {
      EXPECT_FALSE(f.commits);
      saw_static_guard = true;
    }
    // The guard on %4 (param %1) is unknown: no fact may be recorded.
    EXPECT_FALSE(f.block == 0 && f.inst == 2);
  }
  EXPECT_TRUE(saw_static_guard);
  EXPECT_EQ(ia.out[0][3], AbsVal::constant(0));
  // %4 is 0 (not committed) or 9 (committed): the join must cover both.
  const Interval v4 = ia.concretize(ia.out[0][4]);
  EXPECT_TRUE(v4.contains(0));
  EXPECT_TRUE(v4.contains(9));
}

TEST(Intervals, BranchRefinementNarrowsOperand) {
  const ir::Module m = parse(R"(
int main(%1) frame=0 {
.b0:
  %2 = cmp.lt %1, 10
  condbr %2 ? .b1 : .b2
.b1:
  ret %1
.b2:
  ret 0
}
)");
  const ir::Function& fn = m.functions[0];
  const IntervalAnalysis ia = compute_intervals(m, fn, Cfg::build(fn));
  // On the then edge %1 < 10; on the else edge %1 >= 10.
  EXPECT_LE(ia.concretize(ia.in[1][1]).hi, 9);
  EXPECT_GE(ia.concretize(ia.in[2][1]).lo, 10);
}

TEST(Intervals, DefiniteOutOfBoundsGlobalAccess) {
  const ir::Module m = parse(R"(
global @g[2]
int main() frame=0 {
.b0:
  %1 = gaddr @g
  %2 = load.w [%1 + 8]
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const IntervalAnalysis ia = compute_intervals(m, fn, Cfg::build(fn));
  ASSERT_EQ(ia.oob.size(), 1u);
  EXPECT_EQ(ia.oob[0].block, 0);
  EXPECT_EQ(ia.oob[0].inst, 1);
  EXPECT_EQ(ia.oob[0].global, 0);
  EXPECT_EQ(ia.oob[0].size, 4u);
  EXPECT_EQ(ia.oob[0].limit, 8u);
}

TEST(Intervals, InBoundsGlobalAccessIsClean) {
  const ir::Module m = parse(R"(
global @g[2]
int main() frame=0 {
.b0:
  %1 = gaddr @g
  %2 = load.w [%1 + 4]
  ret %2
}
)");
  const ir::Function& fn = m.functions[0];
  const IntervalAnalysis ia = compute_intervals(m, fn, Cfg::build(fn));
  EXPECT_TRUE(ia.oob.empty());
}

// ---------------------------------------------------------------------
// Lints

LintReport lint(std::string_view text, LintOptions options = {}) {
  return lint_module(parse(text), options);
}

TEST(Lint, UseBeforeDef) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %2 = add %1, 1
  ret %2
}
)",
                            LintOptions::only({LintRule::UseBeforeDef}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].to_string(),
            "warning: @main .b0 inst 0: %1 may be read before it is "
            "assigned [ir.use-before-def]");
}

TEST(Lint, NoUseBeforeDefWhenDefinedOnAllPaths) {
  const LintReport r = lint(R"(
int main(%1) frame=0 {
.b0:
  condbr %1 ? .b1 : .b2
.b1:
  %2 = 1
  br .b3
.b2:
  %2 = 2
  br .b3
.b3:
  ret %2
}
)",
                            LintOptions::only({LintRule::UseBeforeDef}));
  EXPECT_TRUE(r.diags.empty());
}

TEST(Lint, GuardedDefIsNotDefinite) {
  const LintReport r = lint(R"(
int main(%1) frame=0 {
.b0:
  [%1] %2 = 7
  ret %2
}
)",
                            LintOptions::only({LintRule::UseBeforeDef}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].inst, 1);
}

TEST(Lint, DeadStore) {
  const LintReport r = lint(R"(
void main() frame=0 {
.b0:
  %1 = 5
  ret
}
)",
                            LintOptions::only({LintRule::DeadStore}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].to_string(),
            "warning: @main .b0 inst 0: result %1 is never used "
            "[ir.dead-store]");
}

TEST(Lint, OverwrittenStoreIsDead) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %1 = 5
  %1 = 6
  ret %1
}
)",
                            LintOptions::only({LintRule::DeadStore}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].inst, 0);
}

TEST(Lint, UnreachableGraphAndSemantics) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %1 = 5
  condbr %1 ? .b1 : .b2
.b1:
  ret 1
.b2:
  ret 0
.b3:
  ret 2
}
)",
                            LintOptions::only({LintRule::Unreachable}));
  ASSERT_EQ(r.diags.size(), 2u);
  EXPECT_EQ(r.diags[0].block, 2);
  EXPECT_EQ(r.diags[0].message,
            "block can never execute: branch conditions exclude it");
  EXPECT_EQ(r.diags[1].block, 3);
  EXPECT_EQ(r.diags[1].message, "block has no path from entry");
}

TEST(Lint, GuardFalse) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %1 = 0
  [%1] %2 = 9
  ret %2
}
)",
                            LintOptions::only({LintRule::GuardFalse}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].to_string(),
            "warning: @main .b0 inst 1: guard %1 is never satisfied: "
            "instruction cannot commit [ir.guard-false]");
}

TEST(Lint, NegatedGuardTrueIsFalseFact) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %1 = 1
  [!%1] %2 = 9
  ret %2
}
)",
                            LintOptions::only({LintRule::GuardFalse}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].message,
            "guard %1 (negated) is never satisfied: instruction cannot "
            "commit");
}

TEST(Lint, ConstBranch) {
  const LintReport r = lint(R"(
int main() frame=0 {
.b0:
  %1 = 5
  condbr %1 ? .b1 : .b2
.b1:
  ret 1
.b2:
  ret 0
}
)",
                            LintOptions::only({LintRule::ConstBranch}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].message,
            "condition is always true: branch always goes to .b1");
}

TEST(Lint, GlobalOobIsError) {
  const LintReport r = lint(R"(
global @g[2]
int main() frame=0 {
.b0:
  %1 = gaddr @g
  %2 = load.w [%1 + 8]
  ret %2
}
)",
                            LintOptions::only({LintRule::GlobalOob}));
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].severity, LintSeverity::Error);
  EXPECT_EQ(r.diags[0].message,
            "4-byte access at @g + byte offset 8 is outside the global "
            "(8 bytes)");
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(Lint, WerrorPromotesWarnings) {
  LintOptions o = LintOptions::only({LintRule::DeadStore});
  o.werror = true;
  const LintReport r = lint(R"(
void main() frame=0 {
.b0:
  %1 = 5
  ret
}
)",
                            o);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 0u);
  EXPECT_FALSE(r.clean());
}

TEST(Lint, JsonReportShape) {
  const LintReport r = lint(R"(
void main() frame=0 {
.b0:
  %1 = 5
  ret
}
)",
                            LintOptions::only({LintRule::DeadStore}));
  EXPECT_EQ(r.to_json(),
            "{\"errors\":0,\"warnings\":1,\"werror\":false,"
            "\"diagnostics\":[{\"rule\":\"ir.dead-store\","
            "\"severity\":\"warning\",\"function\":\"main\",\"block\":0,"
            "\"inst\":0,\"message\":\"result %1 is never used\"}]}");
}

TEST(Lint, CleanModuleEmptyReport) {
  const LintReport r = lint(R"(
int main(%1) frame=0 {
.b0:
  %2 = add %1, 1
  ret %2
}
)");
  EXPECT_TRUE(r.diags.empty());
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.to_text(), "");
}

TEST(Lint, DiagnosticsSortedByLocation) {
  const LintReport r = lint(R"(
void main() frame=0 {
.b0:
  %1 = 5
  %2 = 6
  ret
}
)",
                            LintOptions::only({LintRule::DeadStore}));
  ASSERT_EQ(r.diags.size(), 2u);
  EXPECT_LT(r.diags[0].inst, r.diags[1].inst);
}

}  // namespace
}  // namespace cepic::analysis
