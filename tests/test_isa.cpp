#include <gtest/gtest.h>

#include "core/custom.hpp"
#include "core/instruction.hpp"
#include "core/isa.hpp"

namespace cepic {
namespace {

using testutil_ops = int;

TEST(Isa, EveryOpHasNameAndLookup) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const OpInfo& info = op_info(op);
    ASSERT_FALSE(info.name.empty()) << "op id " << i;
    const auto found = op_by_name(info.name);
    ASSERT_TRUE(found.has_value()) << info.name;
    EXPECT_EQ(*found, op);
  }
}

TEST(Isa, UnknownNameLookupFails) {
  EXPECT_FALSE(op_by_name("frobnicate").has_value());
  EXPECT_FALSE(op_by_name("").has_value());
  EXPECT_FALSE(op_by_name("ADD").has_value());  // mnemonics are lower-case
}

TEST(Isa, FuClassAssignment) {
  EXPECT_EQ(op_info(Op::ADD).fu, FuClass::Alu);
  EXPECT_EQ(op_info(Op::MUL).fu, FuClass::Alu);
  EXPECT_EQ(op_info(Op::CMPP_LT).fu, FuClass::Cmpu);
  EXPECT_EQ(op_info(Op::LDW).fu, FuClass::Lsu);
  EXPECT_EQ(op_info(Op::STW).fu, FuClass::Lsu);
  EXPECT_EQ(op_info(Op::BRCT).fu, FuClass::Bru);
  EXPECT_EQ(op_info(Op::PBR).fu, FuClass::Bru);
  EXPECT_EQ(op_info(Op::NOP).fu, FuClass::None);
}

TEST(Isa, CmppIsDualDestination) {
  // HPL-PD two-target compares: DEST1 <- cond, DEST2 <- !cond.
  const OpInfo& info = op_info(Op::CMPP_EQ);
  EXPECT_EQ(info.dest1, RegFile::Pred);
  EXPECT_EQ(info.dest2, RegFile::Pred);
}

TEST(Isa, StoreReadsDest1) {
  EXPECT_TRUE(op_info(Op::STW).dest1_is_source);
  EXPECT_TRUE(op_info(Op::STB).dest1_is_source);
  EXPECT_FALSE(op_info(Op::STW).writes_dest1());
  EXPECT_FALSE(op_info(Op::LDW).dest1_is_source);
  EXPECT_TRUE(op_info(Op::LDW).writes_dest1());
}

TEST(Isa, BranchFlags) {
  for (Op op : {Op::BRU, Op::BRCT, Op::BRCF, Op::BRL, Op::BRR}) {
    EXPECT_TRUE(op_info(op).is_branch) << op_info(op).name;
  }
  EXPECT_FALSE(op_info(Op::PBR).is_branch);  // prepare-to-branch doesn't jump
  EXPECT_FALSE(op_info(Op::HALT).is_branch);
}

TEST(Isa, MemFlags) {
  EXPECT_TRUE(op_info(Op::LDW).is_load);
  EXPECT_TRUE(op_info(Op::LDWS).is_load);
  EXPECT_TRUE(op_info(Op::STB).is_store);
  EXPECT_TRUE(op_info(Op::OUT).is_mem());
  EXPECT_FALSE(op_info(Op::ADD).is_mem());
}

TEST(Isa, LogicalOpsZeroExtendLiterals) {
  EXPECT_TRUE(op_info(Op::AND).literal_zero_extends);
  EXPECT_TRUE(op_info(Op::SHL).literal_zero_extends);
  EXPECT_TRUE(op_info(Op::CMPP_LTU).literal_zero_extends);
  EXPECT_FALSE(op_info(Op::ADD).literal_zero_extends);
  EXPECT_FALSE(op_info(Op::CMPP_LT).literal_zero_extends);
}

TEST(Isa, CustomSlotHelpers) {
  EXPECT_TRUE(is_custom(Op::CUSTOM0));
  EXPECT_TRUE(is_custom(Op::CUSTOM3));
  EXPECT_FALSE(is_custom(Op::ADD));
  EXPECT_EQ(custom_slot(Op::CUSTOM2), 2u);
}

TEST(Instruction, ToStringRendering) {
  const Instruction add =
      Instruction::make(Op::ADD, 3, Operand::r(4), Operand::imm(-5));
  EXPECT_EQ(to_string(add), "add r3, r4, #-5");

  Instruction guarded = add;
  guarded.pred = 7;
  EXPECT_EQ(to_string(guarded), "(p7) add r3, r4, #-5");

  const Instruction cmp = Instruction::make(Op::CMPP_LT, 1, Operand::r(2),
                                            Operand::r(3), 0, 4);
  EXPECT_EQ(to_string(cmp), "cmpp.lt p1, p4, r2, r3");

  const Instruction st =
      Instruction::make(Op::STW, 5, Operand::r(6), Operand::imm(8));
  EXPECT_EQ(to_string(st), "stw r5, r6, #8");

  EXPECT_EQ(to_string(Instruction::nop()), "nop");
  EXPECT_EQ(to_string(Instruction::make(Op::PBR, 2, Operand::imm(100))),
            "pbr b2, #100");
}

TEST(Instruction, ValidateAcceptsWellFormed) {
  const ProcessorConfig cfg;
  EXPECT_EQ(validate_instruction(
                Instruction::make(Op::ADD, 1, Operand::r(2), Operand::r(3)),
                cfg),
            "");
  EXPECT_EQ(validate_instruction(Instruction::halt(), cfg), "");
}

TEST(Instruction, ValidateRejectsOutOfRangeRegisters) {
  const ProcessorConfig cfg;  // 64 GPRs
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::ADD, 64, Operand::r(2), Operand::r(3)),
                cfg),
            "");
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::ADD, 1, Operand::r(64), Operand::r(3)),
                cfg),
            "");
}

TEST(Instruction, ValidateRejectsOutOfRangeLiteral) {
  const ProcessorConfig cfg;  // 16-bit SRC fields
  EXPECT_EQ(validate_instruction(Instruction::make(Op::ADD, 1, Operand::r(2),
                                                   Operand::imm(32767)),
                                 cfg),
            "");
  EXPECT_NE(validate_instruction(Instruction::make(Op::ADD, 1, Operand::r(2),
                                                   Operand::imm(32768)),
                                 cfg),
            "");
  // Logical ops zero-extend: 65535 fits, -1 does not.
  EXPECT_EQ(validate_instruction(Instruction::make(Op::AND, 1, Operand::r(2),
                                                   Operand::imm(65535)),
                                 cfg),
            "");
  EXPECT_NE(validate_instruction(Instruction::make(Op::AND, 1, Operand::r(2),
                                                   Operand::imm(-1)),
                                 cfg),
            "");
}

TEST(Instruction, ValidateRejectsWrongOperandKind) {
  const ProcessorConfig cfg;
  // BRU needs a BTR register, not a literal.
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::BRU, 0, Operand::imm(3)), cfg),
            "");
  // PBR needs a literal target, not a register.
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::PBR, 0, Operand::r(3)), cfg),
            "");
  // LDW base must be a register.
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::LDW, 1, Operand::imm(0), Operand::imm(0)),
                cfg),
            "");
}

TEST(Instruction, ValidateRespectsFeatureTrims) {
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::DIV, 1, Operand::r(2), Operand::r(3)),
                cfg),
            "");
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::REM, 1, Operand::r(2), Operand::r(3)),
                cfg),
            "");
  cfg.alu.has_div = true;
  cfg.alu.has_mul = false;
  EXPECT_NE(validate_instruction(
                Instruction::make(Op::MUL, 1, Operand::r(2), Operand::r(3)),
                cfg),
            "");
}

TEST(Instruction, ValidateRejectsDisabledCustomSlot) {
  ProcessorConfig cfg;  // no custom ops enabled
  EXPECT_NE(validate_instruction(Instruction::make(Op::CUSTOM0, 1,
                                                   Operand::r(2),
                                                   Operand::r(3)),
                                 cfg),
            "");
  cfg.custom_ops = {"rotr"};
  EXPECT_EQ(validate_instruction(Instruction::make(Op::CUSTOM0, 1,
                                                   Operand::r(2),
                                                   Operand::r(3)),
                                 cfg),
            "");
  EXPECT_NE(validate_instruction(Instruction::make(Op::CUSTOM1, 1,
                                                   Operand::r(2),
                                                   Operand::r(3)),
                                 cfg),
            "");
}

TEST(Instruction, RegisterOperandCounting) {
  EXPECT_EQ(count_reg_reads(Instruction::make(Op::ADD, 1, Operand::r(2),
                                              Operand::r(3))),
            2u);
  EXPECT_EQ(count_reg_writes(Instruction::make(Op::ADD, 1, Operand::r(2),
                                               Operand::r(3))),
            1u);
  // Store: value + base are reads, nothing written.
  EXPECT_EQ(count_reg_reads(Instruction::make(Op::STW, 5, Operand::r(6),
                                              Operand::imm(0))),
            2u);
  EXPECT_EQ(count_reg_writes(Instruction::make(Op::STW, 5, Operand::r(6),
                                               Operand::imm(0))),
            0u);
  // Dual-destination compare writes two predicates.
  EXPECT_EQ(count_reg_writes(Instruction::make(Op::CMPP_EQ, 1, Operand::r(2),
                                               Operand::r(3), 0, 2)),
            2u);
}

TEST(CustomOps, BuiltinsEvaluate) {
  const auto rotr = builtin_custom_op("rotr");
  ASSERT_TRUE(rotr.has_value());
  EXPECT_EQ(rotr->eval(0x80000001u, 1), 0xC0000000u);

  const auto popc = builtin_custom_op("popc");
  ASSERT_TRUE(popc.has_value());
  EXPECT_EQ(popc->eval(0xFF, 2), 10u);

  const auto sadd = builtin_custom_op("sadd");
  ASSERT_TRUE(sadd.has_value());
  EXPECT_EQ(sadd->eval(0x7FFFFFFFu, 1), 0x7FFFFFFFu);  // saturates
  EXPECT_EQ(sadd->eval(0x80000000u, 0xFFFFFFFFu), 0x80000000u);

  const auto madd = builtin_custom_op("madd16");
  ASSERT_TRUE(madd.has_value());
  // (3*5) + (2*4) = 23 with hi/lo packing.
  const std::uint32_t a = (2u << 16) | 3u;
  const std::uint32_t b = (4u << 16) | 5u;
  EXPECT_EQ(madd->eval(a, b), 23u);

  EXPECT_FALSE(builtin_custom_op("nonsense").has_value());
}

TEST(CustomOps, TableInstallAndLookup) {
  CustomOpTable table = CustomOpTable::for_names({"rotr", "popc"});
  EXPECT_TRUE(table.has(0));
  EXPECT_TRUE(table.has(1));
  EXPECT_FALSE(table.has(2));
  EXPECT_EQ(table.get(0).name, "rotr");
  EXPECT_EQ(table.slot_of("popc"), 1u);
  EXPECT_FALSE(table.slot_of("rotl").has_value());
  EXPECT_THROW(table.get(3), InternalError);
  EXPECT_THROW(CustomOpTable::for_names({"bogus"}), ConfigError);
}

}  // namespace
}  // namespace cepic
