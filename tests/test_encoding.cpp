#include <gtest/gtest.h>

#include "core/encoding.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"

namespace cepic {
namespace {

ProcessorConfig default_cfg() {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};  // so CUSTOM0 participates in the sweeps
  return cfg;
}

TEST(Encoding, RoundtripSimpleAdd) {
  const ProcessorConfig cfg = default_cfg();
  const Instruction inst =
      Instruction::make(Op::ADD, 3, Operand::r(4), Operand::imm(-5), 2);
  const std::uint64_t word = encode_instruction(inst, cfg);
  EXPECT_EQ(decode_instruction(word, cfg), inst);
}

TEST(Encoding, FieldPlacementMatchesPaperLayout) {
  // With the default format, PRED occupies bits [0,5), SRC2 [5,21),
  // SRC1 [21,37), DEST2 [37,43), DEST1 [43,49), OPCODE [49,64).
  const ProcessorConfig cfg = default_cfg();
  const Instruction inst =
      Instruction::make(Op::ADD, 9, Operand::r(11), Operand::r(13), 3);
  const std::uint64_t word = encode_instruction(inst, cfg);
  EXPECT_EQ(extract_bits(word, 0, 5), 3u);     // pred
  EXPECT_EQ(extract_bits(word, 5, 16), 13u);   // src2
  EXPECT_EQ(extract_bits(word, 21, 16), 11u);  // src1
  EXPECT_EQ(extract_bits(word, 43, 6), 9u);    // dest1
  EXPECT_EQ(extract_bits(word, 49, 12), static_cast<std::uint64_t>(Op::ADD));
}

TEST(Encoding, LiteralFlagsInOpcodeField) {
  const ProcessorConfig cfg = default_cfg();
  const std::uint64_t reg_word = encode_instruction(
      Instruction::make(Op::ADD, 1, Operand::r(2), Operand::r(3)), cfg);
  const std::uint64_t lit_word = encode_instruction(
      Instruction::make(Op::ADD, 1, Operand::r(2), Operand::imm(3)), cfg);
  // src2-literal flag = opcode-field bit 13.
  EXPECT_EQ(extract_bits(reg_word, 49 + 13, 1), 0u);
  EXPECT_EQ(extract_bits(lit_word, 49 + 13, 1), 1u);
}

TEST(Encoding, NegativeLiteralRoundtrip) {
  const ProcessorConfig cfg = default_cfg();
  for (std::int32_t lit : {-32768, -1, 0, 1, 32767}) {
    const Instruction inst =
        Instruction::make(Op::ADD, 1, Operand::r(2), Operand::imm(lit));
    EXPECT_EQ(decode_instruction(encode_instruction(inst, cfg), cfg), inst)
        << "literal " << lit;
  }
}

TEST(Encoding, ZeroExtendedLiteralRoundtrip) {
  const ProcessorConfig cfg = default_cfg();
  for (std::int32_t lit : {0, 1, 32768, 65535}) {
    const Instruction inst =
        Instruction::make(Op::OR, 1, Operand::r(2), Operand::imm(lit));
    EXPECT_EQ(decode_instruction(encode_instruction(inst, cfg), cfg), inst)
        << "literal " << lit;
  }
}

TEST(Encoding, RejectsInvalidInstruction) {
  const ProcessorConfig cfg = default_cfg();
  EXPECT_THROW(encode_instruction(Instruction::make(Op::ADD, 99, Operand::r(2),
                                                    Operand::r(3)),
                                  cfg),
               Error);
}

TEST(Encoding, DecodeRejectsUnknownOpId) {
  const ProcessorConfig cfg = default_cfg();
  // Craft a word whose opid is out of range.
  const std::uint64_t word = std::uint64_t{4000} << 49;
  EXPECT_THROW(decode_instruction(word, cfg), Error);
}

TEST(Encoding, DecodeRejectsLiteralFlagOnRegisterOnlyOperand) {
  const ProcessorConfig cfg = default_cfg();
  // BRU src1 must be a BTR register; set the literal flag artificially.
  std::uint64_t word = encode_instruction(
      Instruction::make(Op::BRU, 0, Operand::r(1)), cfg);
  word |= std::uint64_t{1} << (49 + 12);  // src1-literal flag
  EXPECT_THROW(decode_instruction(word, cfg), Error);
}

TEST(Encoding, DecodeRejectsHighGarbageBitsOnNarrowFormats) {
  ProcessorConfig cfg = default_cfg();
  cfg.num_gprs = 32;
  cfg.num_preds = 16;
  cfg.num_btrs = 8;
  // dest=6 (minimum), pred=5 (minimum), so total is still 64; shrink via
  // a config whose format is < 64 bits is not possible with the floors,
  // so this test only applies when total < 64. Skip if not.
  if (cfg.format().total_bits() >= 64) GTEST_SKIP();
  const std::uint64_t word = ~std::uint64_t{0};
  EXPECT_THROW(decode_instruction(word, cfg), Error);
}

TEST(Encoding, HaltAndNopRoundtrip) {
  const ProcessorConfig cfg = default_cfg();
  EXPECT_EQ(decode_instruction(
                encode_instruction(Instruction::nop(), cfg), cfg),
            Instruction::nop());
  EXPECT_EQ(decode_instruction(
                encode_instruction(Instruction::halt(), cfg), cfg),
            Instruction::halt());
}

// ---- Property test: randomised instructions roundtrip across several
// configurations (different register-file sizes → different formats). ----

struct SweepConfig {
  unsigned gprs, preds, btrs;
};

class EncodingSweep : public ::testing::TestWithParam<SweepConfig> {};

Operand random_src(Prng& prng, SrcSpec spec, const ProcessorConfig& cfg,
                   bool zext) {
  switch (spec) {
    case SrcSpec::None:
      return Operand::none();
    case SrcSpec::Gpr:
      return Operand::r(prng.next_below(cfg.num_gprs));
    case SrcSpec::Pred:
      return Operand::r(prng.next_below(cfg.num_preds));
    case SrcSpec::Btr:
      return Operand::r(prng.next_below(cfg.num_btrs));
    case SrcSpec::LitOnly:
      return Operand::imm(static_cast<std::int32_t>(prng.next_below(1000)));
    case SrcSpec::GprOrLit:
      if (prng.next_below(2) == 0) {
        return Operand::r(prng.next_below(cfg.num_gprs));
      }
      if (zext) {
        return Operand::imm(static_cast<std::int32_t>(
            prng.next_below(1u << cfg.format().src_bits)));
      }
      return Operand::imm(prng.next_in(-(1 << (cfg.format().src_bits - 1)),
                                       (1 << (cfg.format().src_bits - 1)) - 1));
  }
  return Operand::none();
}

TEST_P(EncodingSweep, RandomInstructionsRoundtrip) {
  ProcessorConfig cfg = default_cfg();
  cfg.num_gprs = GetParam().gprs;
  cfg.num_preds = GetParam().preds;
  cfg.num_btrs = GetParam().btrs;
  cfg.validate();

  Prng prng(GetParam().gprs * 1000003u + GetParam().preds);
  int encoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Op op = static_cast<Op>(prng.next_below(kNumOps));
    const OpInfo& info = op_info(op);
    Instruction inst;
    inst.op = op;
    if (info.dest1 == RegFile::Gpr) inst.dest1 = prng.next_below(cfg.num_gprs);
    if (info.dest1 == RegFile::Pred) inst.dest1 = prng.next_below(cfg.num_preds);
    if (info.dest1 == RegFile::Btr) inst.dest1 = prng.next_below(cfg.num_btrs);
    if (info.dest2 == RegFile::Pred) inst.dest2 = prng.next_below(cfg.num_preds);
    inst.src1 = random_src(prng, info.src1, cfg, info.literal_zero_extends);
    inst.src2 = random_src(prng, info.src2, cfg, info.literal_zero_extends);
    inst.pred = prng.next_below(cfg.num_preds);

    if (!validate_instruction(inst, cfg).empty()) continue;  // e.g. reg cap
    const std::uint64_t word = encode_instruction(inst, cfg);
    EXPECT_EQ(decode_instruction(word, cfg), inst) << to_string(inst);
    ++encoded;
  }
  EXPECT_GT(encoded, 1000);  // the sweep actually exercised encodings
}

INSTANTIATE_TEST_SUITE_P(Formats, EncodingSweep,
                         ::testing::Values(SweepConfig{64, 32, 16},
                                           SweepConfig{32, 16, 8},
                                           SweepConfig{16, 4, 2},
                                           SweepConfig{64, 32, 64}));

}  // namespace
}  // namespace cepic
