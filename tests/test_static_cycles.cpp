// Differential tests for the static schedule analyzer
// (analysis/static_cycles.hpp) against EpicSimulator::run():
//
//  * on programs whose control flow resolves statically the prediction
//    is EXACT — SimStats compares field-for-field equal;
//  * on every terminating program the bound
//      bundles_issued <= cycles <= bundles_issued * max_cycles_per_bundle
//    holds;
//  * a predicted fault means the simulator faults with the same text.
//
// The random sweep runs the full fuzz customisation grid; failures name
// the config and seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/static_cycles.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

using namespace testutil;

SimStats run_sim(const Program& p, std::uint64_t max_cycles = 2'000'000) {
  SimOptions options;
  options.max_cycles = max_cycles;
  EpicSimulator sim(p, {}, options);
  sim.run();
  return sim.stats();
}

void expect_exact(std::initializer_list<std::vector<Instruction>> bundles,
                  ProcessorConfig cfg = {}) {
  const Program p = make_program(cfg, bundles);
  const analysis::StaticCycleReport report = analysis::predict_cycles(p);
  ASSERT_TRUE(report.exact) << report.reason;
  EXPECT_FALSE(report.fault);
  EXPECT_EQ(report.stats, run_sim(p)) << report.to_string();
}

// --- exact mode: the stall taxonomy of tests/test_sim_timing.cpp ------

TEST(StaticCycles, ExactOnIndependentBundles) {
  expect_exact({{mov(1, I(1))}, {mov(2, I(2))}, {mov(3, I(3))}, {halt()}});
}

TEST(StaticCycles, ExactOnLoadUseStall) {
  expect_exact({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                {ldw(2, 1, 0)},
                {add(3, R(2), I(1))},
                {halt()}});
}

TEST(StaticCycles, ExactOnPortStallsWithoutForwarding) {
  ProcessorConfig cfg;
  cfg.forwarding = false;
  expect_exact({{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                {add(5, R(1), R(2)), add(6, R(3), R(4)), add(7, R(1), R(3)),
                 add(8, R(2), R(4))},
                {halt()}},
               cfg);
}

TEST(StaticCycles, ExactOnForwardingFixedPoint) {
  // The delayed-issue port fixed point (see SimTiming): a single-pass
  // port count predicts 1 stall here; the converged answer is 2.
  ProcessorConfig cfg;
  cfg.reg_port_budget = 5;
  expect_exact({{mov(9, I(9)), mov(10, I(10)), mov(11, I(11)), mov(12, I(12))},
                {mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                {add(5, R(1), R(9)), add(6, R(2), R(10)), add(7, R(3), R(11)),
                 add(8, R(4), R(12))},
                {halt()}},
               cfg);
}

TEST(StaticCycles, ExactOnMemoryContention) {
  ProcessorConfig cfg;
  cfg.unified_memory_contention = true;
  expect_exact({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                {stw(1, 1, 0)},
                {ldw(2, 1, 0)},
                {halt()}},
               cfg);
}

TEST(StaticCycles, ExactOnTakenBranch) {
  expect_exact({{pbr(1, 2)}, {bru(1)}, {halt()}});
}

TEST(StaticCycles, ExactOnStaticallyDecidedConditionalBranch) {
  // p1 is written by a compare of literals: the predictor resolves the
  // branch direction and the not-taken accounting statically.
  expect_exact({{pbr(1, 2), cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},
                {brct(1, 1)},
                {halt()}});
}

TEST(StaticCycles, ExactOnCountedLoop) {
  // for (r1 = 3; r1 != 0; --r1): trip count and both branch directions
  // resolve statically, so the whole loop unrolls in the walk.
  expect_exact({{mov(1, I(3)), pbr(1, 1)},
                {add(1, R(1), I(-1)), cmpp(Op::CMPP_NE, 2, 3, R(1), I(0))},
                {brct(1, 2)},
                {halt()}});
}

TEST(StaticCycles, ExactOnNullifiedGuards) {
  // Both polarity outcomes of a static predicate: op accounting
  // (committed vs nullified) must match the simulator's.
  expect_exact({{cmpp(Op::CMPP_EQ, 1, 2, I(5), I(5))},
                {add(3, I(1), I(1), /*pred=*/1), add(4, I(2), I(2), /*pred=*/2)},
                {halt()}});
}

// --- bounded mode ------------------------------------------------------

TEST(StaticCycles, LoadDependentBranchFallsBackToBound) {
  // The branch predicate derives from a loaded value: the walk must
  // stop (bounded, not exact) and the bound must cover the real run.
  const Program p = make_program(
      ProcessorConfig{},
      {{mov(1, I(static_cast<std::int32_t>(kDataBase))), pbr(1, 4)},
       {ldw(2, 1, 0)},
       {cmpp(Op::CMPP_EQ, 1, 2, R(2), I(0))},
       {brct(1, 1)},
       {halt()}});
  const analysis::StaticCycleReport report = analysis::predict_cycles(p);
  EXPECT_FALSE(report.exact);
  EXPECT_FALSE(report.fault);
  EXPECT_NE(report.reason.find("statically unknown"), std::string::npos)
      << report.reason;
  EXPECT_TRUE(report.within_bound(run_sim(p))) << report.to_string();
}

TEST(StaticCycles, LoadDependentGuardFallsBackToBound) {
  const Program p = make_program(
      ProcessorConfig{},
      {{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
       {ldw(2, 1, 0)},
       {cmpp(Op::CMPP_EQ, 1, 2, R(2), I(0))},
       {add(3, I(1), I(1), /*pred=*/1)},
       {halt()}});
  const analysis::StaticCycleReport report = analysis::predict_cycles(p);
  EXPECT_FALSE(report.exact);
  EXPECT_NE(report.reason.find("guard predicate"), std::string::npos)
      << report.reason;
  EXPECT_TRUE(report.within_bound(run_sim(p))) << report.to_string();
}

TEST(StaticCycles, StaticInfiniteLoopExhaustsWalkBudget) {
  const Program p =
      make_program(ProcessorConfig{}, {{pbr(1, 0)}, {bru(1)}, {halt()}});
  analysis::StaticCycleOptions options;
  options.max_bundles = 64;
  const analysis::StaticCycleReport report =
      analysis::predict_cycles(p, {}, options);
  EXPECT_FALSE(report.exact);
  EXPECT_FALSE(report.fault);
  EXPECT_NE(report.reason.find("walk budget"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.walked_bundles, 64u);
  EXPECT_GE(report.max_cycles_per_bundle, 1u);
}

// --- fault prediction ---------------------------------------------------

TEST(StaticCycles, PredictsBranchPastEndFault) {
  const Program p =
      make_program(ProcessorConfig{}, {{pbr(1, 99)}, {bru(1)}, {halt()}});
  const analysis::StaticCycleReport report = analysis::predict_cycles(p);
  ASSERT_TRUE(report.fault);
  EXPECT_FALSE(report.exact);
  try {
    run_sim(p);
    FAIL() << "simulator did not fault";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(report.reason), std::string::npos)
        << "predicted: " << report.reason << "\nactual: " << e.what();
  }
}

// --- reports -----------------------------------------------------------

TEST(StaticCycles, ReportFormats) {
  const Program p = make_program(ProcessorConfig{}, {{mov(1, I(1))}, {halt()}});
  const analysis::StaticCycleReport report = analysis::predict_cycles(p);
  ASSERT_TRUE(report.exact);
  EXPECT_NE(report.to_string().find("static-cycles: exact"), std::string::npos);
  EXPECT_NE(report.to_string().find("bound: bundles_issued <= cycles"),
            std::string::npos);
  EXPECT_NE(report.to_json().find("\"exact\":1"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"cycles\":2"), std::string::npos);
}

// --- the fuzz sweep: full customisation grid ---------------------------

TEST(StaticCycles, DifferentialOnRandomProgramsAcrossConfigGrid) {
  std::uint64_t exact_runs = 0;
  std::uint64_t fault_predictions = 0;

  const std::vector<NamedConfig> grid = fuzz_configs();
  for (std::size_t ci = 0; ci < grid.size(); ++ci) {
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
      SCOPED_TRACE(cat("config ", grid[ci].name, " seed ", seed));
      Prng rng(seed * 1009 + ci);
      const Program p = random_program(rng, grid[ci].cfg);

      analysis::StaticCycleOptions options;
      options.max_bundles = 5'000;
      const analysis::StaticCycleReport report =
          analysis::predict_cycles(p, {}, options);

      bool sim_faulted = false;
      std::string sim_error;
      SimStats observed;
      try {
        observed = run_sim(p, /*max_cycles=*/1'000'000);
      } catch (const SimError& e) {
        sim_faulted = true;
        sim_error = e.what();
      }

      if (report.fault) {
        ASSERT_TRUE(sim_faulted) << "predicted fault did not occur: "
                                 << report.reason;
        EXPECT_NE(sim_error.find(report.reason), std::string::npos)
            << "predicted: " << report.reason << "\nactual: " << sim_error;
        ++fault_predictions;
      } else if (report.exact) {
        ASSERT_FALSE(sim_faulted) << sim_error;
        EXPECT_EQ(report.stats, observed) << report.to_string();
        ++exact_runs;
      } else if (!sim_faulted) {
        // Bounded prediction: the walk stopped on an unknown value (or
        // budget), but the bound still covers the terminating run.
        EXPECT_TRUE(report.within_bound(observed))
            << report.to_string() << "observed cycles=" << observed.cycles
            << " bundles=" << observed.bundles_issued;
      }
    }
  }
  // The corpus must exercise both the exact walk and fault prediction;
  // bounded mode (rare here — random loads usually hit the null guard
  // and become fault predictions instead) is pinned by the dedicated
  // LoadDependent* tests above.
  EXPECT_GT(exact_runs, 0u);
  EXPECT_GT(fault_predictions, 0u);
}

}  // namespace
}  // namespace cepic
