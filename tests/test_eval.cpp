#include <gtest/gtest.h>

#include <limits>

#include "core/eval.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"

namespace cepic {
namespace {

constexpr unsigned W = 32;

std::uint32_t alu(Op op, std::uint32_t a, std::uint32_t b) {
  return eval_alu(op, a, b, W);
}

TEST(EvalAlu, Arithmetic) {
  EXPECT_EQ(alu(Op::ADD, 2, 3), 5u);
  EXPECT_EQ(alu(Op::SUB, 2, 3), to_unsigned(-1));
  EXPECT_EQ(alu(Op::MUL, 7, 6), 42u);
  EXPECT_EQ(alu(Op::MUL, to_unsigned(-4), 3), to_unsigned(-12));
}

TEST(EvalAlu, AddWrapsAtWidth) {
  EXPECT_EQ(alu(Op::ADD, 0xFFFFFFFFu, 1), 0u);
  EXPECT_EQ(alu(Op::MUL, 0x10000u, 0x10000u), 0u);
}

TEST(EvalAlu, SignedDivision) {
  EXPECT_EQ(alu(Op::DIV, 7, 2), 3u);
  EXPECT_EQ(alu(Op::DIV, to_unsigned(-7), 2), to_unsigned(-3));
  EXPECT_EQ(alu(Op::REM, 7, 2), 1u);
  EXPECT_EQ(alu(Op::REM, to_unsigned(-7), 2), to_unsigned(-1));
}

TEST(EvalAlu, DivisionByZeroIsDefined) {
  EXPECT_EQ(alu(Op::DIV, 42, 0), 0u);
  EXPECT_EQ(alu(Op::REM, 42, 0), 42u);
}

TEST(EvalAlu, DivisionOverflowWraps) {
  const std::uint32_t int_min = 0x80000000u;
  EXPECT_EQ(alu(Op::DIV, int_min, to_unsigned(-1)), int_min);
  EXPECT_EQ(alu(Op::REM, int_min, to_unsigned(-1)), 0u);
}

TEST(EvalAlu, Logical) {
  EXPECT_EQ(alu(Op::AND, 0xF0F0u, 0xFF00u), 0xF000u);
  EXPECT_EQ(alu(Op::OR, 0xF0F0u, 0x0F0Fu), 0xFFFFu);
  EXPECT_EQ(alu(Op::XOR, 0xFFFFu, 0x0F0Fu), 0xF0F0u);
}

TEST(EvalAlu, Shifts) {
  EXPECT_EQ(alu(Op::SHL, 1, 31), 0x80000000u);
  EXPECT_EQ(alu(Op::SHRL, 0x80000000u, 31), 1u);
  EXPECT_EQ(alu(Op::SHRA, 0x80000000u, 31), 0xFFFFFFFFu);
  EXPECT_EQ(alu(Op::SHRA, 0x40000000u, 30), 1u);
  // Shift amounts reduce modulo the width.
  EXPECT_EQ(alu(Op::SHL, 1, 32), 1u);
  EXPECT_EQ(alu(Op::SHL, 1, 33), 2u);
}

TEST(EvalAlu, MinMaxAbs) {
  EXPECT_EQ(alu(Op::MIN, to_unsigned(-3), 2), to_unsigned(-3));
  EXPECT_EQ(alu(Op::MAX, to_unsigned(-3), 2), 2u);
  EXPECT_EQ(alu(Op::ABS, to_unsigned(-3), 0), 3u);
  EXPECT_EQ(alu(Op::ABS, 3, 0), 3u);
  // |INT_MIN| wraps to INT_MIN, as on real two's-complement hardware.
  EXPECT_EQ(alu(Op::ABS, 0x80000000u, 0), 0x80000000u);
}

TEST(EvalAlu, Mov) {
  EXPECT_EQ(alu(Op::MOV, 123, 999), 123u);
}

TEST(EvalAlu, CustomOpDispatch) {
  const CustomOpTable table = CustomOpTable::for_names({"rotr"});
  EXPECT_EQ(eval_alu(Op::CUSTOM0, 0x80000001u, 1, W, &table), 0xC0000000u);
  // Evaluating an uninstalled slot is an internal error.
  EXPECT_THROW(eval_alu(Op::CUSTOM1, 1, 1, W, &table), InternalError);
  EXPECT_THROW(eval_alu(Op::CUSTOM0, 1, 1, W, nullptr), InternalError);
}

TEST(EvalAlu, NarrowDatapath16) {
  // A 16-bit datapath (a paper customisation parameter): arithmetic wraps
  // at 16 bits and sign lives at bit 15.
  EXPECT_EQ(eval_alu(Op::ADD, 0xFFFF, 1, 16), 0u);
  EXPECT_EQ(eval_alu(Op::SHRA, 0x8000, 15, 16), 0xFFFFu);
  EXPECT_EQ(eval_alu(Op::ABS, 0xFFFF, 0, 16), 1u);  // -1 at width 16
  EXPECT_EQ(eval_alu(Op::MUL, 0x100, 0x100, 16), 0u);
}

TEST(EvalCmpp, SignedComparisons) {
  EXPECT_TRUE(eval_cmpp(Op::CMPP_LT, to_unsigned(-1), 0, W));
  EXPECT_FALSE(eval_cmpp(Op::CMPP_LT, 0, to_unsigned(-1), W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_GE, 5, 5, W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_LE, to_unsigned(-5), to_unsigned(-5), W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_GT, 1, to_unsigned(-1), W));
}

TEST(EvalCmpp, UnsignedComparisons) {
  EXPECT_FALSE(eval_cmpp(Op::CMPP_LTU, 0xFFFFFFFFu, 0, W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_GTU, 0xFFFFFFFFu, 0, W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_LEU, 3, 3, W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_GEU, 4, 3, W));
}

TEST(EvalCmpp, Equality) {
  EXPECT_TRUE(eval_cmpp(Op::CMPP_EQ, 7, 7, W));
  EXPECT_FALSE(eval_cmpp(Op::CMPP_EQ, 7, 8, W));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_NE, 7, 8, W));
}

TEST(EvalCmpp, Pset) {
  EXPECT_TRUE(eval_cmpp(Op::PSET, 5, 0, W));
  EXPECT_FALSE(eval_cmpp(Op::PSET, 0, 0, W));
}

TEST(EvalCmpp, NarrowWidthComparesAtWidth) {
  // 0xFFFF at width 16 is -1, which is < 0 signed but > 0 unsigned.
  EXPECT_TRUE(eval_cmpp(Op::CMPP_LT, 0xFFFF, 0, 16));
  EXPECT_TRUE(eval_cmpp(Op::CMPP_GTU, 0xFFFF, 0, 16));
}

// Property: CMPP pairs are complementary for random inputs.
TEST(EvalCmpp, PairsAreComplementary) {
  Prng prng(99);
  const std::pair<Op, Op> pairs[] = {
      {Op::CMPP_EQ, Op::CMPP_NE}, {Op::CMPP_LT, Op::CMPP_GE},
      {Op::CMPP_GT, Op::CMPP_LE}, {Op::CMPP_LTU, Op::CMPP_GEU},
      {Op::CMPP_GTU, Op::CMPP_LEU}};
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t a = prng.next_u32();
    const std::uint32_t b = prng.next_below(4) == 0 ? a : prng.next_u32();
    for (const auto& [op, complement] : pairs) {
      EXPECT_NE(eval_cmpp(op, a, b, W), eval_cmpp(complement, a, b, W));
    }
  }
}

// Property: ALU semantics match native C++ arithmetic where defined.
TEST(EvalAlu, MatchesNativeArithmeticProperty) {
  Prng prng(1234);
  for (int i = 0; i < 5000; ++i) {
    const std::int32_t a = to_signed(prng.next_u32());
    const std::int32_t b = to_signed(prng.next_u32());
    EXPECT_EQ(alu(Op::ADD, to_unsigned(a), to_unsigned(b)),
              to_unsigned(static_cast<std::int32_t>(
                  static_cast<std::int64_t>(a) + b)));
    EXPECT_EQ(alu(Op::AND, to_unsigned(a), to_unsigned(b)),
              to_unsigned(a) & to_unsigned(b));
    if (b != 0 && !(a == std::numeric_limits<std::int32_t>::min() && b == -1)) {
      EXPECT_EQ(alu(Op::DIV, to_unsigned(a), to_unsigned(b)),
                to_unsigned(a / b));
      EXPECT_EQ(alu(Op::REM, to_unsigned(a), to_unsigned(b)),
                to_unsigned(a % b));
    }
  }
}

}  // namespace
}  // namespace cepic
