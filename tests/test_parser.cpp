#include <gtest/gtest.h>

#include "frontend/ast.hpp"
#include "support/error.hpp"

namespace cepic::minic {
namespace {

Unit parse_src(std::string_view src) { return parse(lex(src)); }

TEST(Parser, FunctionWithParams) {
  const Unit u = parse_src("int f(int a, int b[]) { return a; }");
  ASSERT_EQ(u.functions.size(), 1u);
  const FuncDecl& f = u.functions[0];
  EXPECT_EQ(f.name, "f");
  EXPECT_TRUE(f.returns_value);
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_FALSE(f.params[0].is_array);
  EXPECT_TRUE(f.params[1].is_array);
}

TEST(Parser, VoidFunctionAndEmptyParams) {
  const Unit u = parse_src("void g() { } void h(void) { }");
  ASSERT_EQ(u.functions.size(), 2u);
  EXPECT_FALSE(u.functions[0].returns_value);
  EXPECT_TRUE(u.functions[0].params.empty());
  EXPECT_TRUE(u.functions[1].params.empty());
}

TEST(Parser, Globals) {
  const Unit u = parse_src(
      "int x = 5;\n"
      "int tab[4] = {1, 2, 3, 4};\n"
      "int msg[] = \"hi\";\n"
      "int buf[100];\n");
  ASSERT_EQ(u.globals.size(), 4u);
  EXPECT_FALSE(u.globals[0]->is_array);
  EXPECT_TRUE(u.globals[0]->has_init_list);
  EXPECT_TRUE(u.globals[1]->is_array);
  EXPECT_EQ(u.globals[1]->init_list.size(), 4u);
  EXPECT_TRUE(u.globals[2]->has_str_init);
  EXPECT_EQ(u.globals[2]->str_init, "hi");
  EXPECT_TRUE(u.globals[3]->is_array);
  EXPECT_EQ(u.globals[3]->array_size, -2);  // size expression parked
}

TEST(Parser, PrecedenceShapesTree) {
  const Unit u = parse_src("int f() { return 1 + 2 * 3; }");
  const Stmt& ret = *u.functions[0].body->body[0];
  ASSERT_EQ(ret.kind, StmtKind::Return);
  const Expr& e = *ret.expr;
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.op, Tok::Plus);            // + is the root
  EXPECT_EQ(e.rhs->op, Tok::Star);       // * binds tighter
}

TEST(Parser, AssignmentIsRightAssociative) {
  const Unit u = parse_src("int f() { int a; int b; a = b = 1; return a; }");
  const Stmt& s = *u.functions[0].body->body[2];
  ASSERT_EQ(s.kind, StmtKind::Expr);
  ASSERT_EQ(s.expr->kind, ExprKind::Assign);
  EXPECT_EQ(s.expr->rhs->kind, ExprKind::Assign);
}

TEST(Parser, ControlFlowForms) {
  const Unit u = parse_src(
      "void f() {"
      "  if (1) { } else { }"
      "  while (1) break;"
      "  do { continue; } while (0);"
      "  for (int i = 0; i < 10; i++) { }"
      "  for (;;) break;"
      "}");
  const auto& body = u.functions[0].body->body;
  EXPECT_EQ(body[0]->kind, StmtKind::If);
  EXPECT_TRUE(body[0]->else_s != nullptr);
  EXPECT_EQ(body[1]->kind, StmtKind::While);
  EXPECT_EQ(body[2]->kind, StmtKind::DoWhile);
  EXPECT_EQ(body[3]->kind, StmtKind::For);
  EXPECT_TRUE(body[3]->init != nullptr);
  EXPECT_TRUE(body[3]->expr != nullptr);
  EXPECT_TRUE(body[3]->step != nullptr);
  EXPECT_EQ(body[4]->kind, StmtKind::For);
  EXPECT_TRUE(body[4]->expr == nullptr);
}

TEST(Parser, TernaryAndCalls) {
  const Unit u = parse_src("int f(int a) { return a ? f(a - 1) : 0; }");
  const Expr& e = *u.functions[0].body->body[0]->expr;
  ASSERT_EQ(e.kind, ExprKind::Ternary);
  EXPECT_EQ(e.lhs->kind, ExprKind::Call);
  EXPECT_EQ(e.lhs->args.size(), 1u);
}

TEST(Parser, IndexAndIncDec) {
  const Unit u = parse_src("void f(int a[]) { a[0]++; ++a[1]; a[2] += 3; }");
  const auto& body = u.functions[0].body->body;
  EXPECT_EQ(body[0]->expr->kind, ExprKind::IncDec);
  EXPECT_FALSE(body[0]->expr->prefix);
  EXPECT_EQ(body[1]->expr->kind, ExprKind::IncDec);
  EXPECT_TRUE(body[1]->expr->prefix);
  EXPECT_EQ(body[2]->expr->kind, ExprKind::Assign);
  EXPECT_EQ(body[2]->expr->op, Tok::PlusEq);
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(parse_src("int f( { }"), CompileError);
  EXPECT_THROW(parse_src("int f() { return 1 }"), CompileError);
  EXPECT_THROW(parse_src("int f() { if 1 { } }"), CompileError);
  EXPECT_THROW(parse_src("int f() { 1 +; }"), CompileError);
  EXPECT_THROW(parse_src("int f() { a[1; }"), CompileError);
  EXPECT_THROW(parse_src("void x;"), CompileError);  // void global
  EXPECT_THROW(parse_src("int f() { 5 = 3; }"), CompileError);
  EXPECT_THROW(parse_src("int f() { ++5; }"), CompileError);
}

TEST(Parser, RejectsUnterminatedBlock) {
  EXPECT_THROW(parse_src("int f() { int a;"), CompileError);
}

}  // namespace
}  // namespace cepic::minic
