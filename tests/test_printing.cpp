// Rendering tests: the IR printer, SARM listing and simulator stats
// report — the human-facing surfaces tools and debugging rely on.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "sarm/isa.hpp"
#include "sim/simulator.hpp"

namespace cepic {
namespace {

TEST(IrPrinter, RendersFunctionsBlocksAndGlobals) {
  const ir::Module m = minic::compile_to_ir(
      "int tab[3] = {1, 2, 3};\n"
      "int f(int a) { if (a > 0) return tab[a]; return -1; }");
  const std::string text = ir::to_string(m);
  EXPECT_NE(text.find("global @tab[3] = {1, 2, 3}"), std::string::npos);
  EXPECT_NE(text.find("int f("), std::string::npos);
  EXPECT_NE(text.find(".b0"), std::string::npos);
  EXPECT_NE(text.find("cmp.gt"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
  EXPECT_NE(text.find("load.w ["), std::string::npos);
  EXPECT_NE(text.find("gaddr @tab"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(IrPrinter, RendersGuardsAndCalls) {
  ir::IrInst inst;
  inst.op = ir::IrOp::Mov;
  inst.dst = 5;
  inst.a = ir::Value::i(7);
  inst.guard = 3;
  EXPECT_EQ(ir::to_string(inst), "[%3] %5 = 7");
  inst.guard_negate = true;
  EXPECT_EQ(ir::to_string(inst), "[!%3] %5 = 7");

  ir::IrInst call;
  call.op = ir::IrOp::Call;
  call.dst = 9;
  call.callee = "f";
  call.args = {ir::Value::r(1), ir::Value::i(2)};
  EXPECT_EQ(ir::to_string(call), "%9 = call @f(%1, 2)");
}

TEST(SarmPrinter, RendersInstructionsAndListing) {
  sarm::SInst add;
  add.op = sarm::SOp::Add;
  add.rd = 2;
  add.rn = 3;
  add.op2 = sarm::Operand2::reg(4, sarm::Shift::Lsl, 2);
  EXPECT_EQ(sarm::to_string(add), "add r2, r3, r4, lsl #2");

  sarm::SInst mov;
  mov.op = sarm::SOp::Mov;
  mov.cond = sarm::Cond::LT;
  mov.rd = 1;
  mov.op2 = sarm::Operand2::immediate(-5);
  EXPECT_EQ(sarm::to_string(mov), "movlt r1, #-5");

  sarm::SInst ldr;
  ldr.op = sarm::SOp::Ldr;
  ldr.rd = 6;
  ldr.rn = 13;
  ldr.op2 = sarm::Operand2::immediate(8);
  EXPECT_EQ(sarm::to_string(ldr), "ldr r6, [r13, #8]");

  const sarm::SProgram p = sarm::compile_minic_to_sarm(
      "int main() { return 1; }");
  const std::string listing = sarm::to_string(p);
  EXPECT_NE(listing.find("__start:"), std::string::npos);
  EXPECT_NE(listing.find("main:"), std::string::npos);
  EXPECT_NE(listing.find("bx r14"), std::string::npos);
}

TEST(StatsReport, MentionsEveryStallBucket) {
  auto sim = pipeline::run_once(
      "int main() { int s = 0;"
      " for (int i = 0; i < 5; i++) s += i; out(s); return s; }",
      ProcessorConfig{});
  const std::string r = sim.stats().report();
  for (const char* needle :
       {"cycles:", "ILP", "scoreboard", "reg ports", "branch bubbles",
        "bundle width histogram"}) {
    EXPECT_NE(r.find(needle), std::string::npos) << needle;
  }
}

TEST(ConfigText, IsSelfDescribing) {
  const std::string text = ProcessorConfig{}.to_text();
  for (const char* key :
       {"num_alus", "num_gprs", "issue_width", "pipeline_stages",
        "custom_ops"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace cepic
