// Unit tests for the threaded-code execution tier's machinery itself —
// promotion thresholds, per-bundle fallback, block reuse across
// reset(), fault text, determinism — complementing the three-way
// differential suite (tests/test_sim_fastpath.cpp), which proves the
// tier's *results* bit-identical to the other tiers. Telemetry
// counters (ThreadedCache::block_entries / fallback_bundles /
// cold_steps) are observability-only: nothing here asserts an exact
// instruction-path count that an optimisation would legitimately
// change, only the structural facts the tier's contract promises.
#include <gtest/gtest.h>

#include "core/memory.hpp"
#include "core/program.hpp"
#include "sim/simulator.hpp"
#include "support/text.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

using namespace testutil;

/// A counted loop; bundle 1 heads the hot region, so it is the
/// promotion candidate. The cmpp reads the pre-increment r1 (MultiOp
/// reads happen before writes), so the body executes iters + 1 times:
/// one OUT per pass, final r1 == iters + 1.
Program counted_loop(unsigned iters) {
  return make_program(
      ProcessorConfig{},
      {{mov(1, I(0)), mov(2, I(static_cast<std::int32_t>(iters))), pbr(1, 1)},
       {add(1, R(1), I(1)), cmpp(Op::CMPP_LT, 1, 2, R(1), R(2))},
       {brct(1, 1), out(R(1))},
       {halt()}});
}

SimOptions threaded_options(unsigned hot_threshold) {
  SimOptions options;
  options.exec_tier = ExecTier::Threaded;
  options.threaded_hot_threshold = hot_threshold;
  return options;
}

TEST(SimThreaded, PromotionWaitsForTheHotThreshold) {
  const Program p = counted_loop(20);
  EpicSimulator sim(p, {}, threaded_options(8));
  sim.run();
  ASSERT_TRUE(sim.halted());
  const ThreadedCache& tc = sim.threaded_cache();
  ASSERT_TRUE(tc.enabled());
  // The loop head reached the threshold and compiled exactly one block;
  // the straight-line prologue (one arrival per run) never did.
  ASSERT_EQ(tc.blocks.size(), 1u);
  EXPECT_EQ(tc.blocks[0].entry_pc, 1u);
  EXPECT_EQ(tc.hot[1], 8u);  // stops counting once the block exists
  EXPECT_LT(tc.hot[0], 8u);
  EXPECT_GT(tc.cold_steps, 0u);   // pre-promotion decode-tier steps
  EXPECT_GT(tc.block_entries, 0u);
  // 21 passes of OUT either way (see counted_loop).
  EXPECT_EQ(sim.output().size(), 21u);
}

TEST(SimThreaded, ThresholdOneCompilesOnFirstTouch) {
  const Program p = counted_loop(20);
  EpicSimulator sim(p, {}, threaded_options(1));
  sim.run();
  ASSERT_TRUE(sim.halted());
  const ThreadedCache& tc = sim.threaded_cache();
  EXPECT_EQ(tc.cold_steps, 0u);
  EXPECT_GE(tc.blocks.size(), 1u);
  EXPECT_GT(tc.block_entries, 0u);
}

TEST(SimThreaded, ThresholdAboveArrivalCountNeverPromotes) {
  const Program p = counted_loop(20);
  EpicSimulator sim(p, {}, threaded_options(1000));
  sim.run();
  ASSERT_TRUE(sim.halted());
  const ThreadedCache& tc = sim.threaded_cache();
  EXPECT_TRUE(tc.blocks.empty());
  EXPECT_EQ(tc.block_entries, 0u);
  EXPECT_GT(tc.cold_steps, 0u);
  // The tier still computes the right answer on the decode path.
  EXPECT_EQ(sim.output().size(), 21u);
  EXPECT_EQ(sim.gpr(1), 21u);
}

TEST(SimThreaded, CustomOpBundlesFallBackPerBundleWithIdenticalResults) {
  // Custom-op semantics are user callbacks (they may throw), so the
  // lowering routes such bundles to the per-bundle fallback; the rest
  // of the loop still runs as compiled micro-ops.
  ProcessorConfig cfg;
  cfg.custom_ops = {"popc"};
  const Program p = make_program(
      cfg,
      {{mov(1, I(0)), mov(2, I(16)), mov(3, I(0)), pbr(1, 1)},
       {add(1, R(1), I(1)), op3(Op::CUSTOM0, 3, R(1), R(3))},
       {cmpp(Op::CMPP_LT, 1, 2, R(1), R(2))},
       {brct(1, 1)},
       {halt()}});
  const CustomOpTable custom = CustomOpTable::for_names(cfg.custom_ops);

  EpicSimulator threaded(p, custom, threaded_options(1));
  threaded.run();
  ASSERT_TRUE(threaded.halted());
  EXPECT_GT(threaded.threaded_cache().fallback_bundles, 0u);
  EXPECT_GT(threaded.threaded_cache().block_entries, 0u);

  SimOptions decode_options;
  decode_options.exec_tier = ExecTier::Decode;
  EpicSimulator decode(p, custom, decode_options);
  decode.run();
  EXPECT_EQ(threaded.stats(), decode.stats());
  EXPECT_EQ(threaded.output(), decode.output());
  for (unsigned i = 0; i < p.config.num_gprs; ++i) {
    EXPECT_EQ(threaded.gpr(i), decode.gpr(i)) << "gpr " << i;
  }
}

TEST(SimThreaded, BlocksSurviveResetAndAreReusedDeterministically) {
  // Blocks are pure functions of the (immutable) program + options,
  // exactly like the decode cache: reset() must not drop them, repeat
  // runs must reuse (not recompile) them, and the results must be
  // bit-identical run over run.
  const Program p = counted_loop(50);
  EpicSimulator sim(p, {}, threaded_options(4));
  sim.run();
  const SimStats first = sim.stats();
  const auto first_output = sim.output();
  const std::size_t compiled = sim.threaded_cache().blocks.size();
  const std::uint64_t entries = sim.threaded_cache().block_entries;
  const std::int32_t head_block = sim.threaded_cache().block_at[1];
  ASSERT_GT(compiled, 0u);
  ASSERT_GE(head_block, 0);

  for (int run = 0; run < 3; ++run) {
    sim.reset();
    sim.run();
    EXPECT_EQ(sim.stats(), first) << "run " << run;
    EXPECT_EQ(sim.output(), first_output) << "run " << run;
    // The loop-head block is reused, never dropped or recompiled. (The
    // promotion profile also survives, so later runs may promote
    // *additional* entry pcs — the count can grow, never shrink.)
    EXPECT_EQ(sim.threaded_cache().block_at[1], head_block)
        << "run " << run;
    EXPECT_GE(sim.threaded_cache().blocks.size(), compiled)
        << "run " << run;
  }
  // ...and the later runs entered the already-compiled blocks.
  EXPECT_GT(sim.threaded_cache().block_entries, entries);
}

TEST(SimThreaded, CycleLimitFaultNamesTheBundle) {
  // Blocks elide the per-bundle cycle-limit check; near the limit
  // execution must single-step the decode tier so the fault text (with
  // the faulting bundle pc) is exact.
  SimOptions options = threaded_options(1);
  options.max_cycles = 100;
  const Program loop =
      make_program(ProcessorConfig{}, {{pbr(1, 1)}, {bru(1)}, {halt()}});
  EpicSimulator sim(loop, {}, options);
  try {
    sim.run();
    FAIL() << "expected the cycle-limit fault";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle limit exceeded (100 cycles)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("at bundle 1"), std::string::npos) << what;
  }
  // Statistics at the fault match the decode tier's exactly (the last
  // successful bundle's branch bubbles may legally sit past the limit;
  // what matters is that both tiers stop at the same point).
  SimOptions decode_options = options;
  decode_options.exec_tier = ExecTier::Decode;
  EpicSimulator decode(loop, {}, decode_options);
  EXPECT_THROW(decode.run(), SimError);
  EXPECT_EQ(sim.stats(), decode.stats());
}

TEST(SimThreaded, DirtyPageResetZeroesExactlyWhatWasWritten) {
  // The threaded tier's probed direct stores (and everything else)
  // must leave DataMemory::reset() with a complete dirty map: memory
  // written through any accessor — checked stores, image loads, the
  // raw() escape hatch — reads back zero after reset().
  DataMemory mem(1u << 20);
  mem.write_word(kDataBase, 0xdeadbeefu);
  mem.write_byte(kDataBase + 4097, 0x5a);     // second page
  mem.raw()[(1u << 20) - 1] = 0x77;           // raw() poke, last page
  const std::vector<std::uint8_t> image{1, 2, 3, 4};
  mem.load_image(kDataBase + 64, image);
  mem.reset();
  for (std::size_t a = 0; a < mem.size(); ++a) {
    ASSERT_EQ(mem.raw()[a], 0u) << "address " << a;
  }
  // And reset() is repeatable: a fresh write after reset is tracked.
  mem.write_word(kDataBase + 8192, 42);
  EXPECT_EQ(mem.read_word(kDataBase + 8192), 42u);
  mem.reset();
  EXPECT_EQ(mem.read_word(kDataBase + 8192), 0u);
}

}  // namespace
}  // namespace cepic
