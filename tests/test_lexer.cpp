#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "support/error.hpp"

namespace cepic::minic {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto toks = lex("int foo void while whilex _bar2");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, Tok::KwInt);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[2].kind, Tok::KwVoid);
  EXPECT_EQ(toks[3].kind, Tok::KwWhile);
  EXPECT_EQ(toks[4].kind, Tok::Ident);  // whilex is not a keyword
  EXPECT_EQ(toks[5].text, "_bar2");
  EXPECT_EQ(toks[6].kind, Tok::End);
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lex("0 42 0xFF 0x1234abcd");
  EXPECT_EQ(toks[0].value, 0);
  EXPECT_EQ(toks[1].value, 42);
  EXPECT_EQ(toks[2].value, 255);
  EXPECT_EQ(toks[3].value, 0x1234ABCD);
}

TEST(Lexer, CharLiterals) {
  const auto toks = lex("'A' '\\n' '\\0' '\\\\'");
  EXPECT_EQ(toks[0].value, 'A');
  EXPECT_EQ(toks[1].value, '\n');
  EXPECT_EQ(toks[2].value, 0);
  EXPECT_EQ(toks[3].value, '\\');
}

TEST(Lexer, StringLiterals) {
  const auto toks = lex("\"Hello\\n\"");
  ASSERT_EQ(toks[0].kind, Tok::StrLit);
  EXPECT_EQ(toks[0].text, "Hello\n");
}

TEST(Lexer, ShiftOperatorsDisambiguate) {
  EXPECT_EQ(kinds("<< >> >>> <<= >>= < > <= >="),
            (std::vector<Tok>{Tok::Shl, Tok::Shr, Tok::Sar, Tok::ShlEq,
                              Tok::ShrEq, Tok::Lt, Tok::Gt, Tok::Le, Tok::Ge,
                              Tok::End}));
}

TEST(Lexer, CompoundAssignAndIncDec) {
  EXPECT_EQ(kinds("+= -= *= /= %= &= |= ^= ++ -- + -"),
            (std::vector<Tok>{Tok::PlusEq, Tok::MinusEq, Tok::StarEq,
                              Tok::SlashEq, Tok::PercentEq, Tok::AmpEq,
                              Tok::PipeEq, Tok::CaretEq, Tok::PlusPlus,
                              Tok::MinusMinus, Tok::Plus, Tok::Minus,
                              Tok::End}));
}

TEST(Lexer, LogicalOperators) {
  EXPECT_EQ(kinds("&& || & | ! != == ="),
            (std::vector<Tok>{Tok::AmpAmp, Tok::PipePipe, Tok::Amp, Tok::Pipe,
                              Tok::Bang, Tok::NotEq, Tok::EqEq, Tok::Assign,
                              Tok::End}));
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(lex("@"), CompileError);
  EXPECT_THROW(lex("'ab'"), CompileError);
  EXPECT_THROW(lex("\"unterminated"), CompileError);
  EXPECT_THROW(lex("/* unterminated"), CompileError);
  EXPECT_THROW(lex("'\\q'"), CompileError);
}

TEST(Lexer, ErrorCarriesLocation) {
  try {
    lex("int x;\n  @");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.col(), 3);
  }
}

}  // namespace
}  // namespace cepic::minic
