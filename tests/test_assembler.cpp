#include <gtest/gtest.h>

#include "asmtool/assembler.hpp"
#include "sim/simulator.hpp"

namespace cepic {
namespace {

using asmtool::assemble;

TEST(Assembler, BundlesAndNopPadding) {
  const Program p = assemble(
      "mov r1, #5 ; add r2, r1, #2 ;;\n"
      "halt ;;\n",
      ProcessorConfig{});
  ASSERT_EQ(p.bundle_count(), 2u);
  EXPECT_EQ(p.code[0].op, Op::MOV);
  EXPECT_EQ(p.code[1].op, Op::ADD);
  EXPECT_TRUE(p.code[2].is_nop());
  EXPECT_TRUE(p.code[3].is_nop());
}

TEST(Assembler, MultiLineBundle) {
  // A MultiOp may span lines; `;;` ends it.
  const Program p = assemble(
      "mov r1, #5\n"
      "mov r2, #6 ;;\n"
      "halt ;;\n",
      ProcessorConfig{});
  ASSERT_EQ(p.bundle_count(), 2u);
  EXPECT_EQ(p.code[1].op, Op::MOV);
}

TEST(Assembler, LabelsResolveToBundles) {
  const Program p = assemble(
      "start:\n"
      "pbr b1, @target ;;\n"
      "bru b1 ;;\n"
      "mov r5, #1 ;;\n"
      "target:\n"
      "halt ;;\n",
      ProcessorConfig{});
  EXPECT_EQ(p.code_symbols.at("start"), 0u);
  EXPECT_EQ(p.code_symbols.at("target"), 3u);
  EXPECT_EQ(p.code[0].src1.lit, 3);
}

TEST(Assembler, EntryDirective) {
  const Program p = assemble(
      "pad: nop ;;\n"
      ".entry main\n"
      "main: halt ;;\n",
      ProcessorConfig{});
  EXPECT_EQ(p.entry_bundle, 1u);
}

TEST(Assembler, DataSectionAndSymbols) {
  const Program p = assemble(
      ".data\n"
      ".global table 4 = 1 2 0xFF\n"
      ".global scratch 2\n"
      ".text\n"
      "mov r1, @table ;;\n"
      "mov r2, @scratch ;;\n"
      "halt ;;\n",
      ProcessorConfig{});
  EXPECT_EQ(p.data_symbols.at("table"), kDataBase);
  EXPECT_EQ(p.data_symbols.at("scratch"), kDataBase + 16);
  EXPECT_EQ(p.data.size(), 24u);
  EXPECT_EQ(p.data[3], 1);          // big-endian word 1
  EXPECT_EQ(p.data[11], 0xFF);      // third word
  EXPECT_EQ(p.code[0].src1.lit, static_cast<std::int32_t>(kDataBase));
}

TEST(Assembler, GuardedOps) {
  const Program p = assemble(
      "cmpp.lt p1, p2, r3, #10 ;;\n"
      "(p1) add r4, r4, #1 ;;\n"
      "halt ;;\n",
      ProcessorConfig{});
  EXPECT_EQ(p.code[0].op, Op::CMPP_LT);
  EXPECT_EQ(p.code[0].dest2, 2u);
  EXPECT_EQ(p.code[4].pred, 1u);
}

TEST(Assembler, CommentsIgnored) {
  const Program p = assemble(
      "// full line comment\n"
      "mov r1, #5 ;; // trailing comment\n"
      "halt ;;\n",
      ProcessorConfig{});
  EXPECT_EQ(p.bundle_count(), 2u);
}

TEST(Assembler, RetargetsViaConfigWithoutRecompilation) {
  // The same source assembles to different widths purely from the
  // configuration file (paper §4.2).
  const char* src =
      "mov r1, #1 ; mov r2, #2 ;;\n"
      "halt ;;\n";
  const Program wide = asmtool::assemble_with_config_text(
      src, "issue_width = 4\n");
  const Program narrow = asmtool::assemble_with_config_text(
      src, "issue_width = 2\n");
  EXPECT_EQ(wide.code.size(), 8u);
  EXPECT_EQ(narrow.code.size(), 4u);
}

TEST(Assembler, RejectsOverWideBundle) {
  ProcessorConfig cfg;
  cfg.issue_width = 2;
  EXPECT_THROW(
      assemble("mov r1, #1 ; mov r2, #2 ; mov r3, #3 ;;\nhalt ;;\n", cfg),
      AsmError);
}

TEST(Assembler, RejectsFunctionalUnitOversubscription) {
  // Two memory ops in one MultiOp, but there is a single LSU.
  EXPECT_THROW(assemble("ldw r2, r1, #0 ; ldw r3, r1, #4 ;;\nhalt ;;\n",
                        ProcessorConfig{}),
               AsmError);
  // Two branches, single BRU.
  EXPECT_THROW(assemble("bru b1 ; bru b2 ;;\nhalt ;;\n", ProcessorConfig{}),
               AsmError);
  // Five ALU ops would exceed issue width anyway; use a 2-ALU config
  // with width 4 and three adds.
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  EXPECT_THROW(
      assemble("add r2, r2, #1 ; add r3, r3, #1 ; add r4, r4, #1 ;;\n"
               "halt ;;\n",
               cfg),
      AsmError);
}

TEST(Assembler, RejectsUnknownMnemonic) {
  EXPECT_THROW(assemble("frob r1, r2 ;;\n", ProcessorConfig{}), AsmError);
}

TEST(Assembler, RejectsBadOperands) {
  const ProcessorConfig cfg;
  EXPECT_THROW(assemble("add r1 ;;\n", cfg), AsmError);               // missing
  EXPECT_THROW(assemble("add r1, r2, r3, r4 ;;\n", cfg), AsmError);   // extra
  EXPECT_THROW(assemble("add p1, r2, r3 ;;\n", cfg), AsmError);       // file
  EXPECT_THROW(assemble("bru #3 ;;\n", cfg), AsmError);               // lit
  EXPECT_THROW(assemble("add r1, r2, #99999 ;;\n", cfg), AsmError);   // range
  EXPECT_THROW(assemble("add r99, r2, #1 ;;\n", cfg), AsmError);      // reg
}

TEST(Assembler, RejectsUndefinedSymbols) {
  EXPECT_THROW(assemble("pbr b1, @nowhere ;;\nhalt ;;\n", ProcessorConfig{}),
               AsmError);
  EXPECT_THROW(assemble("mov r1, @nodata ;;\nhalt ;;\n", ProcessorConfig{}),
               AsmError);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW(assemble("a: nop ;;\na: halt ;;\n", ProcessorConfig{}),
               AsmError);
}

TEST(Assembler, RejectsDanglingOps) {
  EXPECT_THROW(assemble("mov r1, #1\n", ProcessorConfig{}), AsmError);
}

TEST(Assembler, RejectsBranchTargetPastEnd) {
  EXPECT_THROW(assemble("pbr b1, #99 ;;\nhalt ;;\n", ProcessorConfig{}),
               AsmError);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop ;;\nnop ;;\nfrob ;;\n", ProcessorConfig{});
    FAIL();
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Assembler, AssembledProgramRunsOnSimulator) {
  const Program p = assemble(
      ".data\n"
      ".global v 1 = 41\n"
      ".text\n"
      "mov r10, @v ;;\n"
      "ldw r11, r10, #0 ;;\n"
      "add r11, r11, #1 ;;\n"
      "out r11 ; halt ;;\n",
      ProcessorConfig{});
  EpicSimulator sim(p);
  sim.run();
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 42u);
}

TEST(Disassembler, RoundtripPreservesEncoding) {
  const Program p = assemble(
      ".data\n"
      ".global tab 3 = 7 8 9\n"
      ".text\n"
      ".entry go\n"
      "go:\n"
      "mov r10, @tab ; pbr b1, @done ;;\n"
      "ldw r11, r10, #4 ;;\n"
      "cmpp.gt p1, p2, r11, #5 ;;\n"
      "(p1) out r11 ;;\n"
      "bru b1 ;;\n"
      "done: halt ;;\n",
      ProcessorConfig{});
  const std::string text = asmtool::disassemble(p);
  const Program q = assemble(text, p.config);
  EXPECT_EQ(p.encode_code(), q.encode_code());
  EXPECT_EQ(p.data, q.data);
  EXPECT_EQ(p.entry_bundle, q.entry_bundle);
}

TEST(Disassembler, MentionsLabelsAndGlobals) {
  const Program p = assemble(
      ".data\n.global g 2\n.text\nstart: halt ;;\n", ProcessorConfig{});
  const std::string text = asmtool::disassemble(p);
  EXPECT_NE(text.find("start:"), std::string::npos);
  EXPECT_NE(text.find(".global g 2"), std::string::npos);
}

}  // namespace
}  // namespace cepic
