// End-to-end MiniC -> IR -> interpreter tests: the interpreter is the
// golden model everything else is checked against, so its own behaviour
// is pinned down here on whole programs.
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "support/error.hpp"

namespace cepic {
namespace {

std::vector<std::uint32_t> run_outputs(std::string_view src) {
  const ir::Module m = minic::compile_to_ir(src);
  ir::Interpreter interp(m);
  return interp.run().output;
}

std::uint32_t run_ret(std::string_view src) {
  const ir::Module m = minic::compile_to_ir(src);
  ir::Interpreter interp(m);
  return interp.run().ret;
}

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_EQ(run_ret("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11u);
  EXPECT_EQ(run_ret("int main() { return (2 + 3) * 4 % 7; }"), 6u);
  EXPECT_EQ(run_ret("int main() { return -5 + 2; }"),
            static_cast<std::uint32_t>(-3));
}

TEST(Interp, ShiftSemantics) {
  // >> is arithmetic, >>> is logical.
  EXPECT_EQ(run_ret("int main() { return (-8) >> 1; }"),
            static_cast<std::uint32_t>(-4));
  EXPECT_EQ(run_ret("int main() { return (-8) >>> 1; }"), 0x7FFFFFFCu);
  EXPECT_EQ(run_ret("int main() { return 1 << 31; }"), 0x80000000u);
}

TEST(Interp, ComparisonsAndLogic) {
  EXPECT_EQ(run_ret("int main() { return (3 < 4) + (4 <= 4) + (5 > 4)"
                    " + (4 >= 5) + (1 == 1) + (1 != 1); }"),
            4u);
  EXPECT_EQ(run_ret("int main() { return !0 + !7; }"), 1u);
  EXPECT_EQ(run_ret("int main() { return ~0; }"), 0xFFFFFFFFu);
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(run_outputs("int t() { out(1); return 1; }\n"
                        "int main() { 0 && t(); 1 || t(); 1 && t();"
                        " return 0; }"),
            (std::vector<std::uint32_t>{1}));
}

TEST(Interp, TernaryAndNestedTernary) {
  EXPECT_EQ(run_ret("int main() { return 1 ? 10 : 20; }"), 10u);
  EXPECT_EQ(run_ret("int main() { int x = 5;"
                    " return x < 3 ? 1 : x < 7 ? 2 : 3; }"),
            2u);
}

TEST(Interp, WhileAndForLoops) {
  EXPECT_EQ(run_ret("int main() { int s = 0; int i = 1;"
                    " while (i <= 10) { s += i; i++; } return s; }"),
            55u);
  EXPECT_EQ(run_ret("int main() { int s = 0;"
                    " for (int i = 0; i < 5; i++) s += i * i; return s; }"),
            30u);
}

TEST(Interp, DoWhileRunsAtLeastOnce) {
  EXPECT_EQ(run_ret("int main() { int n = 0;"
                    " do { n++; } while (0); return n; }"),
            1u);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_EQ(run_ret("int main() { int s = 0;"
                    " for (int i = 0; i < 100; i++) {"
                    "   if (i == 5) break;"
                    "   if (i % 2 == 0) continue;"
                    "   s += i; }"
                    " return s; }"),
            4u);  // 1 + 3
}

TEST(Interp, NestedLoopsWithBreak) {
  EXPECT_EQ(run_ret("int main() { int c = 0;"
                    " for (int i = 0; i < 3; i++)"
                    "   for (int j = 0; j < 10; j++) {"
                    "     if (j == 2) break;"
                    "     c++; }"
                    " return c; }"),
            6u);
}

TEST(Interp, GlobalsAndArrays) {
  EXPECT_EQ(run_ret("int t[4] = {10, 20, 30, 40};\n"
                    "int main() { t[1] = t[0] + t[2]; return t[1]; }"),
            40u);
  EXPECT_EQ(run_ret("int counter = 100;\n"
                    "void bump() { counter += 1; }\n"
                    "int main() { bump(); bump(); return counter; }"),
            102u);
}

TEST(Interp, LocalArraysAndStringInit) {
  EXPECT_EQ(run_ret("int main() { int a[3] = {1, 2, 3};"
                    " return a[0] + a[1] + a[2]; }"),
            6u);
  EXPECT_EQ(run_ret("int main() { int s[] = \"AB\"; return s[0] * 256 + s[1]; }"),
            65u * 256 + 66);
}

TEST(Interp, ArrayParametersShareStorage) {
  EXPECT_EQ(run_ret("void fill(int a[], int n) {"
                    "  for (int i = 0; i < n; i++) a[i] = i * i; }\n"
                    "int main() { int buf[5]; fill(buf, 5);"
                    " return buf[4] + buf[3]; }"),
            25u);
}

TEST(Interp, GlobalArrayPassedToFunction) {
  EXPECT_EQ(run_ret("int data[3] = {7, 8, 9};\n"
                    "int sum(int a[], int n) { int s = 0;"
                    "  for (int i = 0; i < n; i++) s += a[i]; return s; }\n"
                    "int main() { return sum(data, 3); }"),
            24u);
}

TEST(Interp, RecursionFibonacci) {
  EXPECT_EQ(run_ret("int fib(int n) { if (n < 2) return n;"
                    " return fib(n-1) + fib(n-2); }\n"
                    "int main() { return fib(12); }"),
            144u);
}

TEST(Interp, RecursionWithLocalArrays) {
  // Each activation gets its own frame.
  EXPECT_EQ(run_ret("int f(int n) { int a[2]; a[0] = n;"
                    " if (n > 0) f(n - 1); return a[0]; }\n"
                    "int main() { return f(5); }"),
            5u);
}

TEST(Interp, IncDecSemantics) {
  EXPECT_EQ(run_ret("int main() { int i = 5; int a = i++;"
                    " int b = ++i; return a * 100 + b * 10 + i; }"),
            5u * 100 + 7 * 10 + 7);
  EXPECT_EQ(run_ret("int main() { int t[2] = {3, 0}; t[0]--;"
                    " return t[0]; }"),
            2u);
}

TEST(Interp, CompoundAssignments) {
  EXPECT_EQ(run_ret("int main() { int x = 10; x += 5; x -= 3; x *= 2;"
                    " x /= 4; x %= 4; x <<= 3; x >>= 1; x |= 1; x &= 0xF;"
                    " x ^= 2; return x; }"),
            ((((((10 + 5 - 3) * 2 / 4 % 4) << 3) >> 1) | 1) & 0xF) ^ 2u);
}

TEST(Interp, Builtins) {
  EXPECT_EQ(run_ret("int main() { return min(3, -4) + max(10, 2) + abs(-7); }"),
            static_cast<std::uint32_t>(-4 + 10 + 7));
}

TEST(Interp, OutStreamsInOrder) {
  EXPECT_EQ(run_outputs("int main() { for (int i = 0; i < 3; i++) out(i * 7);"
                        " return 0; }"),
            (std::vector<std::uint32_t>{0, 7, 14}));
}

TEST(Interp, DivisionCornerCasesMatchHardwareModel) {
  EXPECT_EQ(run_ret("int main() { return 7 / 0; }"), 0u);
  EXPECT_EQ(run_ret("int main() { return 7 % 0; }"), 7u);
  EXPECT_EQ(run_ret("int main() { return (-7) / 2; }"),
            static_cast<std::uint32_t>(-3));
}

TEST(Interp, EntryWithArguments) {
  const ir::Module m = minic::compile_to_ir("int f(int a, int b) { return a * b; }");
  ir::Interpreter interp(m);
  const std::uint32_t args[] = {6, 7};
  EXPECT_EQ(interp.run("f", args).ret, 42u);
}

TEST(Interp, StepLimitStopsRunaway) {
  const ir::Module m = minic::compile_to_ir("int main() { while (1) { } return 0; }");
  ir::InterpOptions opts;
  opts.max_steps = 10000;
  ir::Interpreter interp(m, opts);
  EXPECT_THROW(interp.run(), SimError);
}

TEST(Interp, CallDepthLimit) {
  const ir::Module m = minic::compile_to_ir("int f(int n) { return f(n + 1); }");
  ir::Interpreter interp(m);
  const std::uint32_t args[] = {0};
  EXPECT_THROW(interp.run("f", args), SimError);
}

TEST(Interp, XorshiftMatchesNative) {
  // The MiniC xorshift32 used by workloads matches support/prng.hpp.
  EXPECT_EQ(run_ret("int main() { int s = 1;"
                    " s ^= s << 13; s ^= s >>> 17; s ^= s << 5;"
                    " return s; }"),
            270369u);
}

}  // namespace
}  // namespace cepic
