// Single-shot pipeline tests: the compile_once()/run_once() one-call
// helpers (successors of the retired driver:: shims), option threading,
// and the equivalence between one-shot results and manually chained
// stages.
#include <gtest/gtest.h>

#include "asmtool/assembler.hpp"
#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "serial/serial.hpp"

namespace cepic::pipeline {
namespace {

const char* kProgram =
    "int main() { int s = 0;"
    " for (int i = 0; i < 6; i++) s += i * i;"
    " out(s); return s; }";

TEST(SingleShot, CompileProducesConsistentArtifacts) {
  const ProcessorConfig cfg;
  const CompileArtifacts r = compile_once(kProgram, cfg);
  // The assembly must reassemble into the identical program.
  const Program again = asmtool::assemble(r.asm_text, cfg);
  EXPECT_EQ(again.encode_code(), r.program.encode_code());
  EXPECT_EQ(r.program.config, cfg);
  EXPECT_NE(r.asm_text.find("fn_main:"), std::string::npos);
  // The optimised module is exposed for inspection.
  EXPECT_NE(r.module.find_function("main"), nullptr);
}

TEST(SingleShot, RunReturnsReadySimulator) {
  EpicSimulator sim = run_once(kProgram, ProcessorConfig{});
  EXPECT_TRUE(sim.halted());
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.gpr(3), 55u);
  EXPECT_GT(sim.stats().cycles, 0u);
}

TEST(SingleShot, SimOptionsThreadThroughToStackTop) {
  // A smaller memory must still work: the backend's stack-top constant
  // follows sim.mem_size.
  SimOptions small;
  small.mem_size = 1 << 16;
  EpicSimulator sim = run_once(kProgram, ProcessorConfig{}, {}, small);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.memory().size(), std::size_t{1} << 16);
}

TEST(SingleShot, UnoptimisedPipelineAgrees) {
  CodegenOptions no_opt;
  no_opt.optimize = false;
  EpicSimulator a = run_once(kProgram, ProcessorConfig{}, no_opt);
  EpicSimulator b = run_once(kProgram, ProcessorConfig{});
  EXPECT_EQ(a.output(), b.output());
  // And the optimiser must actually pay for itself here.
  EXPECT_LT(b.stats().cycles, a.stats().cycles);
}

TEST(SingleShot, SarmDefaultsDisableEpicIfConversion) {
  const sarm::SarmCompileOptions options;
  EXPECT_FALSE(options.opt.if_convert);
  auto sim = sarm::run_minic_on_sarm(kProgram);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.reg(0), 55u);
}

TEST(SingleShot, CompileErrorsPropagate) {
  EXPECT_THROW(compile_once("int main() { return x; }", ProcessorConfig{}),
               CompileError);
  EXPECT_THROW(sarm::compile_minic_to_sarm("int main( { }"), CompileError);
}

TEST(SingleShot, ConfigWithoutEnoughRegistersIsRejected) {
  ProcessorConfig cfg;
  cfg.num_gprs = 8;  // below the ABI's reserved set
  EXPECT_THROW(compile_once(kProgram, cfg), Error);
}

TEST(SingleShot, CustomOpsConfigIsCarriedIntoTheBinary) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  const CompileArtifacts r = compile_once(kProgram, cfg);
  EXPECT_EQ(r.program.config.custom_ops, cfg.custom_ops);
  // A simulator built from the serialised binary picks the ops back up.
  const Program loaded =
      serial::decode_program(serial::encode_program(r.program));
  EXPECT_EQ(loaded.config.custom_ops, cfg.custom_ops);
}

TEST(SingleShot, ProgramsAreReRunnableAfterReset) {
  EpicSimulator sim = run_once(kProgram, ProcessorConfig{});
  const auto first = sim.output();
  const auto cycles = sim.stats().cycles;
  sim.reset();
  sim.run();
  EXPECT_EQ(sim.output(), first);
  EXPECT_EQ(sim.stats().cycles, cycles);  // deterministic cycle model
}

}  // namespace
}  // namespace cepic::pipeline
