// Backend unit tests: lowering shapes, register allocation invariants,
#include "support/text.hpp"
// scheduler dependence/resource correctness.
#include <gtest/gtest.h>

#include <set>

#include "backend/backend.hpp"
#include "frontend/irgen.hpp"
#include "opt/opt.hpp"
#include "support/prng.hpp"

namespace cepic::backend {
namespace {

struct Lowered {
  ir::Module module;
  MFunc mfunc;
  ProcessorConfig config;
};

Lowered lower(std::string_view src, const char* fn_name,
              ProcessorConfig cfg = {}) {
  Lowered out;
  out.module = minic::compile_to_ir(src);
  out.config = cfg;
  const Mdes mdes(cfg);
  const ir::DataLayout layout = ir::layout_globals(out.module);
  out.mfunc = lower_function(*out.module.find_function(fn_name), out.module,
                             layout, mdes, cfg);
  return out;
}

std::size_t count_op(const MFunc& fn, Op op) {
  std::size_t n = 0;
  for (const MBlock& b : fn.blocks) {
    for (const MInst& mi : b.insts) n += mi.inst.op == op ? 1 : 0;
  }
  return n;
}

TEST(Lowering, PrologueSavesRaAndMapsParams) {
  const Lowered l = lower("int f(int a, int b) { return a + b; }", "f");
  const MBlock& entry = l.mfunc.blocks[0];
  EXPECT_EQ(entry.label, "fn_f");
  // sp adjust, ra save, two param movs, add, rv mov, epilogue.
  EXPECT_EQ(entry.insts[0].frame_sign, -1);
  EXPECT_EQ(entry.insts[1].inst.op, Op::STW);
  EXPECT_EQ(entry.insts[2].inst.op, Op::MOV);
  EXPECT_EQ(entry.insts[2].inst.src1.reg, CallConv::kArg0);
  EXPECT_EQ(entry.insts[3].inst.src1.reg, CallConv::kArg0 + 1);
  EXPECT_EQ(entry.insts.back().inst.op, Op::BRR);
  EXPECT_TRUE(entry.insts.back().is_barrier);
}

TEST(Lowering, CmpFeedingBranchBecomesPredicate) {
  const Lowered l =
      lower("int f(int a) { if (a < 5) return 1; return 2; }", "f");
  // The compare lowers to a CMPP, and no 0/1 materialisation happens.
  EXPECT_EQ(count_op(l.mfunc, Op::CMPP_LT), 1u);
  EXPECT_GE(count_op(l.mfunc, Op::BRCT), 1u);
}

TEST(Lowering, CmpUsedAsValueMaterialises) {
  const Lowered l = lower("int f(int a) { return a < 5; }", "f");
  EXPECT_EQ(count_op(l.mfunc, Op::CMPP_LT), 1u);
  // Two MOVs (0 then guarded 1) beyond the param/rv plumbing.
  EXPECT_GE(count_op(l.mfunc, Op::MOV), 4u);
}

TEST(Lowering, LargeConstantsAreBuilt) {
  const Lowered l = lower("int f() { return 0x12345678; }", "f");
  EXPECT_GE(count_op(l.mfunc, Op::SHL), 1u);
  EXPECT_GE(count_op(l.mfunc, Op::OR), 1u);
}

TEST(Lowering, CallSequence) {
  const Lowered l = lower(
      "int g(int x) { return x; }\n"
      "int f() { return g(7); }",
      "f");
  EXPECT_EQ(count_op(l.mfunc, Op::BRL), 1u);
  EXPECT_EQ(count_op(l.mfunc, Op::PBR), 1u);
  bool found_arg_mov = false;
  for (const MBlock& b : l.mfunc.blocks) {
    for (const MInst& mi : b.insts) {
      if (mi.inst.op == Op::MOV && mi.inst.dest1 == CallConv::kArg0) {
        found_arg_mov = true;
      }
      if (mi.inst.op == Op::PBR) {
        EXPECT_EQ(mi.target, "fn_g");
      }
    }
  }
  EXPECT_TRUE(found_arg_mov);
}

TEST(Lowering, RejectsTooManyArgs) {
  const char* src =
      "int g(int a,int b,int c,int d,int e,int f,int h,int i,int j)"
      " { return a; }\n"
      "int f() { return g(1,2,3,4,5,6,7,8,9); }";
  EXPECT_THROW(lower(src, "f"), Error);
}

TEST(Lowering, RejectsDivOnTrimmedAlu) {
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  EXPECT_THROW(lower("int f(int a) { return a / 3; }", "f", cfg), Error);
}

TEST(Lowering, ErrorsNameTheFunctionAndBlock) {
  // Diagnostics must locate the failure in the user's program, not just
  // state the missing capability.
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  try {
    lower("int divider(int a) { return a / 3; }", "divider", cfg);
    FAIL() << "expected a CompileError";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("@divider"), std::string::npos) << what;
    EXPECT_NE(what.find("block"), std::string::npos) << what;
  }
}

TEST(Lowering, GuardedStoreKeepsGuard) {
  ir::Module m = minic::compile_to_ir(
      "int g[1];\n"
      "int f(int a) { if (a > 0) g[0] = a; return g[0]; }");
  for (ir::Function& fn : m.functions) {
    opt::pass_if_convert(fn, 10);
    opt::pass_simplify_cfg(fn);
  }
  const ProcessorConfig cfg;
  const Mdes mdes(cfg);
  const MFunc mf = lower_function(*m.find_function("f"), m,
                                  ir::layout_globals(m), mdes, cfg);
  bool guarded_store = false;
  for (const MBlock& b : mf.blocks) {
    for (const MInst& mi : b.insts) {
      if (mi.inst.op == Op::STW && mi.inst.pred != 0) guarded_store = true;
    }
  }
  EXPECT_TRUE(guarded_store);
}

// ---- register allocation ----

void expect_all_physical(const MFunc& fn, const ProcessorConfig& cfg) {
  for (const MBlock& b : fn.blocks) {
    for (const MInst& mi : b.insts) {
      const Instruction& inst = mi.inst;
      const OpInfo& info = inst.info();
      const auto check = [&](std::uint32_t reg, RegFile file) {
        EXPECT_FALSE(is_virtual(reg));
        switch (file) {
          case RegFile::Gpr: EXPECT_LT(reg, cfg.num_gprs); break;
          case RegFile::Pred: EXPECT_LT(reg, cfg.num_preds); break;
          case RegFile::Btr: EXPECT_LT(reg, cfg.num_btrs); break;
          case RegFile::None: break;
        }
      };
      if (info.dest1 != RegFile::None) check(inst.dest1, info.dest1);
      if (info.dest2 != RegFile::None) check(inst.dest2, info.dest2);
      if (inst.src1.is_reg()) check(inst.src1.reg, RegFile::Gpr);
      check(inst.pred, RegFile::Pred);
    }
  }
}

TEST(RegAlloc, AssignsPhysicalRegisters) {
  Lowered l = lower(
      "int f(int a, int b) { int c = a * b; int d = a + b;"
      " return c - d; }",
      "f");
  allocate_registers(l.mfunc, l.config);
  expect_all_physical(l.mfunc, l.config);
}

TEST(RegAlloc, SpillsUnderPressure) {
  // 16 GPRs leaves r12..r15 allocatable: force spills with many
  // simultaneously-live values.
  std::string src = "int f(int a) { ";
  for (int i = 0; i < 12; ++i) {
    src += cat("int v", i, " = a * ", i + 2, ";");
  }
  src += "return ";
  for (int i = 0; i < 12; ++i) {
    src += cat(i ? " + " : "", "v", i);
  }
  src += "; }";
  ProcessorConfig cfg;
  cfg.num_gprs = 16;
  Lowered l = lower(src, "f", cfg);
  allocate_registers(l.mfunc, l.config);
  expect_all_physical(l.mfunc, l.config);
  // Spill code appeared.
  EXPECT_GE(count_op(l.mfunc, Op::STW), 2u);
}

TEST(RegAlloc, CallCrossingValuesAreSpilled) {
  Lowered l = lower(
      "int g(int x) { return x; }\n"
      "int f(int a) { int keep = a * 3; int r = g(a); return keep + r; }",
      "f");
  allocate_registers(l.mfunc, l.config);
  expect_all_physical(l.mfunc, l.config);
  // `keep` must survive the call through memory: at least the ra save,
  // plus one spill store.
  EXPECT_GE(count_op(l.mfunc, Op::STW), 2u);
}

TEST(RegAlloc, PatchesFrameSize) {
  Lowered l = lower("int f() { int a[10]; a[0] = 1; return a[0]; }", "f");
  allocate_registers(l.mfunc, l.config);
  const MInst& pro = l.mfunc.blocks[0].insts[0];
  ASSERT_EQ(pro.frame_sign, -1);
  EXPECT_LE(pro.inst.src2.lit, -44);  // 4 (ra) + 40 (locals)
}

TEST(RegAlloc, ThrowsWhenAbiDoesNotFit) {
  ProcessorConfig cfg;
  cfg.num_gprs = 8;
  Lowered l = lower("int f() { return 1; }", "f");
  EXPECT_THROW(allocate_registers(l.mfunc, cfg), Error);
}

// ---- scheduling ----

/// Simulate the bundle stream of one block sequentially and compare
/// against the unscheduled order: every register value produced must be
/// identical (dependences preserved). We approximate by checking
/// structural rules instead: no two ops in a bundle where one writes a
/// register the other reads or writes; FU limits respected.
TEST(Schedule, RespectsResourceLimitsAndDependences) {
  const char* src =
      "int f(int a, int b) {"
      "  int c = a + b; int d = a - b; int e = c * d;"
      "  int g = c ^ d; int h = e + g; return h; }";
  Lowered l = lower(src, "f");
  allocate_registers(l.mfunc, l.config);
  const Mdes mdes(l.config);
  const ScheduledFunc sf = schedule_function(l.mfunc, mdes, l.config);

  for (const auto& block : sf.blocks) {
    for (const auto& bundle : block.bundles) {
      EXPECT_LE(bundle.size(), l.config.issue_width);
      unsigned alu = 0, cmpu = 0, lsu = 0, bru = 0;
      std::set<std::uint32_t> writes;
      for (const MInst& mi : bundle) {
        switch (mi.inst.info().fu) {
          case FuClass::Alu: ++alu; break;
          case FuClass::Cmpu: ++cmpu; break;
          case FuClass::Lsu: ++lsu; break;
          case FuClass::Bru: ++bru; break;
          case FuClass::None: break;
        }
        if (mi.inst.info().writes_dest1() &&
            mi.inst.info().dest1 == RegFile::Gpr) {
          // No WAW within a bundle.
          EXPECT_TRUE(writes.insert(mi.inst.dest1).second);
        }
      }
      EXPECT_LE(alu, l.config.num_alus);
      EXPECT_LE(cmpu, 1u);
      EXPECT_LE(lsu, 1u);
      EXPECT_LE(bru, 1u);
      // Note: reading a register another op in the bundle writes is a
      // legal WAR under MultiOp reads-before-writes semantics; genuine
      // RAW misplacement is caught by the e2e equivalence suite, which
      // compares scheduled execution against the interpreter.
    }
  }
}

TEST(Schedule, FindsIlpInIndependentWork) {
  // Eight independent multiplies: with 4 ALUs the busiest bundle should
  // hold several of them.
  const char* src =
      "int f(int a, int b) {"
      "  int t0 = a * 3; int t1 = b * 5; int t2 = a * 7; int t3 = b * 11;"
      "  int t4 = a * 13; int t5 = b * 17; int t6 = a * 19; int t7 = b * 23;"
      "  return ((t0 + t1) + (t2 + t3)) + ((t4 + t5) + (t6 + t7)); }";
  Lowered l = lower(src, "f");
  allocate_registers(l.mfunc, l.config);
  const Mdes mdes(l.config);
  const ScheduledFunc sf = schedule_function(l.mfunc, mdes, l.config);
  std::size_t max_width = 0;
  for (const auto& block : sf.blocks) {
    for (const auto& bundle : block.bundles) {
      max_width = std::max(max_width, bundle.size());
    }
  }
  EXPECT_GE(max_width, 3u);
}

TEST(Schedule, SingleAluLimitsWidth) {
  const char* src =
      "int f(int a, int b) {"
      "  int t0 = a * 3; int t1 = b * 5; int t2 = a * 7;"
      "  return t0 + t1 + t2; }";
  ProcessorConfig cfg;
  cfg.num_alus = 1;
  Lowered l = lower(src, "f", cfg);
  allocate_registers(l.mfunc, l.config);
  const Mdes mdes(cfg);
  const ScheduledFunc sf = schedule_function(l.mfunc, mdes, cfg);
  for (const auto& block : sf.blocks) {
    for (const auto& bundle : block.bundles) {
      unsigned alu = 0;
      for (const MInst& mi : bundle) {
        if (mi.inst.info().fu == FuClass::Alu) ++alu;
      }
      EXPECT_LE(alu, 1u);
    }
  }
}

TEST(Schedule, UnscheduledModeIsOneOpPerBundle) {
  Lowered l = lower("int f(int a) { return a + 1; }", "f");
  allocate_registers(l.mfunc, l.config);
  const Mdes mdes(l.config);
  const ScheduledFunc sf =
      schedule_function(l.mfunc, mdes, l.config, /*schedule=*/false);
  for (const auto& block : sf.blocks) {
    for (const auto& bundle : block.bundles) {
      EXPECT_EQ(bundle.size(), 1u);
    }
  }
}

TEST(Schedule, BranchesStayLast) {
  const char* src = "int f(int a) { if (a) return 1; return 2; }";
  Lowered l = lower(src, "f");
  allocate_registers(l.mfunc, l.config);
  const Mdes mdes(l.config);
  const ScheduledFunc sf = schedule_function(l.mfunc, mdes, l.config);
  for (const auto& block : sf.blocks) {
    bool saw_branch_bundle = false;
    for (const auto& bundle : block.bundles) {
      for (const MInst& mi : bundle) {
        if (mi.inst.info().is_branch) {
          // Branches may only appear in the trailing bundles.
          saw_branch_bundle = true;
        }
      }
      if (saw_branch_bundle) {
        bool has_branch = false;
        for (const MInst& mi : bundle) {
          has_branch |= mi.inst.info().is_branch || mi.inst.op == Op::HALT;
        }
        EXPECT_TRUE(has_branch);
      }
    }
  }
}

}  // namespace
}  // namespace cepic::backend
