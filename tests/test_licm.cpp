// Loop-invariant code motion tests: hoisting behaviour, the non-SSA
// safety conditions, and semantics preservation with the pass enabled.
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "ir/verify.hpp"
#include "opt/opt.hpp"

namespace cepic {
namespace {

using ir::IrOp;

std::size_t count_in_block(const ir::Function& fn, int block, IrOp op) {
  std::size_t n = 0;
  for (const auto& inst : fn.blocks[block].insts) n += inst.op == op ? 1 : 0;
  return n;
}

std::size_t count_op(const ir::Function& fn, IrOp op) {
  std::size_t n = 0;
  for (const auto& b : fn.blocks) {
    for (const auto& i : b.insts) n += i.op == op ? 1 : 0;
  }
  return n;
}

/// Find the single-block loop body (the block ending in a backwards Br).
int body_block(const ir::Function& fn) {
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& t = fn.blocks[b].terminator();
    if (t.op == IrOp::Br && t.block_then < static_cast<int>(b)) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

ir::Module prepared(const char* src) {
  ir::Module m = minic::compile_to_ir(src);
  // Normalise with the standard pre-passes but no licm.
  opt::OptOptions options;
  options.licm = false;
  options.if_convert = false;
  opt::optimize(m, options);
  return m;
}

TEST(Licm, HoistsGlobalAddressOutOfLoop) {
  ir::Module m = prepared(
      "int g[8];\n"
      "int main() { int s = 0;"
      " for (int i = 0; i < 8; i++) s += g[i];"
      " return s; }");
  ir::Function& fn = *m.find_function("main");
  const int body = body_block(fn);
  ASSERT_GE(body, 0);
  ASSERT_EQ(count_in_block(fn, body, IrOp::GlobalAddr), 1u);

  EXPECT_TRUE(opt::pass_licm(fn));
  EXPECT_EQ(count_in_block(fn, body, IrOp::GlobalAddr), 0u);
  // Still exactly one gaddr overall — now in the preheader.
  EXPECT_EQ(count_op(fn, IrOp::GlobalAddr), 1u);

  ir::verify_module(m);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 0u);
}

TEST(Licm, LeavesVariantComputationAlone) {
  ir::Module m = prepared(
      "int main() { int s = 0;"
      " for (int i = 0; i < 8; i++) s += i * i;"
      " return s; }");
  ir::Function& fn = *m.find_function("main");
  const int body = body_block(fn);
  ASSERT_GE(body, 0);
  const std::size_t muls_before = count_in_block(fn, body, IrOp::Mul);
  opt::pass_licm(fn);
  EXPECT_EQ(count_in_block(fn, body, IrOp::Mul), muls_before);
  ir::verify_module(m);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 140u);
}

TEST(Licm, ZeroTripLoopKeepsSemantics) {
  // The invariant mul must not clobber state observable when the loop
  // body never runs.
  const char* src =
      "int g[1] = {5};\n"
      "int main() { int n = g[0] - 5;"  // 0 at runtime, opaque statically
      "  int s = 123;"
      "  for (int i = 0; i < n; i++) s = g[0] * 7;"
      "  out(s); return s; }";
  ir::Module plain = prepared(src);
  ir::Module hoisted = prepared(src);
  for (ir::Function& fn : hoisted.functions) opt::pass_licm(fn);
  ir::verify_module(hoisted);
  EXPECT_EQ(ir::Interpreter(plain).run().output,
            ir::Interpreter(hoisted).run().output);
  EXPECT_EQ(ir::Interpreter(hoisted).run().ret, 123u);
}

TEST(Licm, DoesNotHoistLoadsOrStores) {
  ir::Module m = prepared(
      "int g[1] = {7};\n"
      "int main() { int s = 0;"
      " for (int i = 0; i < 4; i++) { s += g[0]; g[0] = s; }"
      " return s; }");
  ir::Function& fn = *m.find_function("main");
  const int body = body_block(fn);
  ASSERT_GE(body, 0);
  const std::size_t loads = count_in_block(fn, body, IrOp::LoadW);
  opt::pass_licm(fn);
  EXPECT_EQ(count_in_block(fn, body, IrOp::LoadW), loads);
}

TEST(Licm, EntryHeaderLoopGetsPreheader) {
  // A while loop at the very start of the function: the header is the
  // entry block (after CFG simplification), so the new preheader must
  // become the entry.
  const char* src =
      "int g[1] = {5};\n"
      "int f(int n) { int s = 0;"
      " while (n > 0) { s += g[0]; n -= 1; }"
      " return s; }";
  ir::Module m = prepared(src);
  ir::Function& fn = *m.find_function("f");
  opt::pass_licm(fn);
  ir::verify_module(m);
  ir::Interpreter interp(m);
  const std::uint32_t args[] = {4};
  EXPECT_EQ(interp.run("f", args).ret, 20u);
}

TEST(Licm, FullPipelineWithLicmPreservesWorkloadSemantics) {
  const char* src =
      "int tab[6] = {4, 1, 5, 9, 2, 6};\n"
      "int scale = 3;\n"
      "int main() { int acc = 0;"
      "  for (int i = 0; i < 6; i++) {"
      "    for (int j = 0; j < 6; j++) {"
      "      acc += tab[i] * scale + tab[j];"
      "    }"
      "  }"
      "  out(acc); return acc; }";
  ir::Module plain = minic::compile_to_ir(src);
  const auto gold = ir::Interpreter(plain).run();

  ir::Module optimised = minic::compile_to_ir(src);
  opt::OptOptions options;
  options.licm = true;
  opt::optimize(optimised, options);
  EXPECT_EQ(ir::Interpreter(optimised).run().output, gold.output);
}

}  // namespace
}  // namespace cepic
