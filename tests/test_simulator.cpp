// Functional tests of the EPIC simulator: operation semantics, MultiOp
// read-before-write, predication, branching, memory, custom ops, faults.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

using namespace testutil;

EpicSimulator sim_of(std::initializer_list<std::vector<Instruction>> bundles,
                     ProcessorConfig cfg = {}) {
  return EpicSimulator(make_program(cfg, bundles));
}

TEST(Sim, MovAndAdd) {
  auto sim = sim_of({{mov(1, I(5))},
                     {add(2, R(1), I(7))},
                     {out(R(2)), halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(1), 5u);
  EXPECT_EQ(sim.gpr(2), 12u);
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 12u);
}

TEST(Sim, R0IsHardwiredZero) {
  auto sim = sim_of({{mov(0, I(99)), mov(1, R(0))}, {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(0), 0u);
  EXPECT_EQ(sim.gpr(1), 0u);
}

TEST(Sim, MultiOpReadsBeforeWrites) {
  // {r1 <- r2 ; r2 <- r1} executed as one MultiOp swaps the registers.
  auto sim = sim_of({{mov(1, R(2)), mov(2, R(1))}, {halt()}});
  sim.set_gpr(1, 111);
  sim.set_gpr(2, 222);
  sim.run();
  EXPECT_EQ(sim.gpr(1), 222u);
  EXPECT_EQ(sim.gpr(2), 111u);
}

TEST(Sim, WawInBundleLaterOpWins) {
  auto sim = sim_of({{mov(1, I(10)), mov(1, I(20))}, {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(1), 20u);
}

TEST(Sim, CmppDualDestination) {
  auto sim = sim_of({{cmpp(Op::CMPP_LT, 1, 2, R(3), R(4))}, {halt()}});
  sim.set_gpr(3, 1);
  sim.set_gpr(4, 2);
  sim.run();
  EXPECT_TRUE(sim.pred(1));
  EXPECT_FALSE(sim.pred(2));
}

TEST(Sim, P0IsHardwiredTrue) {
  // CMPP writing its false-target to p0 must not clear p0.
  auto sim = sim_of({{cmpp(Op::CMPP_LT, 1, 0, R(3), R(4))},
                     {add(5, I(1), I(1), /*pred=*/0)},
                     {halt()}});
  sim.set_gpr(3, 1);
  sim.set_gpr(4, 2);  // cond true -> p0 would get "false" if writable
  sim.run();
  EXPECT_TRUE(sim.pred(0));
  EXPECT_EQ(sim.gpr(5), 2u);
}

TEST(Sim, PredicationNullifiesOps) {
  auto sim = sim_of({{cmpp(Op::CMPP_EQ, 1, 2, R(3), I(0))},
                     {add(4, I(0), I(10), /*pred=*/1),
                      add(5, I(0), I(20), /*pred=*/2)},
                     {halt()}});
  sim.set_gpr(3, 0);  // cond true: p1=1, p2=0
  sim.run();
  EXPECT_EQ(sim.gpr(4), 10u);
  EXPECT_EQ(sim.gpr(5), 0u);  // nullified
  EXPECT_EQ(sim.stats().ops_nullified, 1u);
}

TEST(Sim, NullifiedStoreDoesNotWriteMemory) {
  auto sim = sim_of({{mov(1, I(77)), mov(2, I(static_cast<std::int32_t>(kDataBase)))},
                     {cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},  // false: p1=0
                     {stw(1, 2, 0, /*pred=*/1)},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.memory().read_word(kDataBase), 0u);
}

TEST(Sim, NullifiedLoadDoesNotFault) {
  // A guarded load from a wild address must not trap when nullified.
  auto sim = sim_of({{mov(1, I(4))},  // unmapped low address
                     {cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},  // p1=0
                     {ldw(3, 1, 0, /*pred=*/1)},
                     {halt()}});
  EXPECT_NO_THROW(sim.run());
}

TEST(Sim, LoadStoreWordAndByte) {
  const auto base = static_cast<std::int32_t>(kDataBase);
  auto sim = sim_of({{mov(1, I(base)), mov(2, I(0x1234))},
                     {stw(2, 1, 0)},
                     {ldw(3, 1, 0)},
                     {Instruction::make(Op::STB, 2, R(1), I(8))},
                     {Instruction::make(Op::LDBU, 4, R(1), I(8))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(3), 0x1234u);
  EXPECT_EQ(sim.gpr(4), 0x34u);  // low byte of 0x1234
}

TEST(Sim, ByteLoadSignExtension) {
  const auto base = static_cast<std::int32_t>(kDataBase);
  auto sim = sim_of({{mov(1, I(base)), mov(2, I(0x80))},
                     {Instruction::make(Op::STB, 2, R(1), I(0))},
                     {Instruction::make(Op::LDB, 3, R(1), I(0))},
                     {Instruction::make(Op::LDBU, 4, R(1), I(0))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(3), 0xFFFFFF80u);
  EXPECT_EQ(sim.gpr(4), 0x80u);
}

TEST(Sim, WordsAreBigEndianInMemory) {
  const auto base = static_cast<std::int32_t>(kDataBase);
  auto sim = sim_of({{mov(1, I(base)), mov(2, I(0x1234))},
                     {stw(2, 1, 0)},
                     {Instruction::make(Op::LDBU, 3, R(1), I(2))},
                     {Instruction::make(Op::LDBU, 4, R(1), I(3))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(3), 0x12u);  // byte 2 holds bits 15..8
  EXPECT_EQ(sim.gpr(4), 0x34u);
}

TEST(Sim, SpeculativeLoadNeverFaults) {
  auto sim = sim_of({{mov(1, I(0))},
                     {Instruction::make(Op::LDWS, 2, R(1), I(0))},  // null
                     {Instruction::make(Op::LDWS, 3, R(1), I(5))},  // misaligned
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(2), 0u);
  EXPECT_EQ(sim.gpr(3), 0u);
}

TEST(Sim, RegularLoadFaultsOnNull) {
  auto sim = sim_of({{mov(1, I(0))}, {ldw(2, 1, 0)}, {halt()}});
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, MisalignedWordAccessFaults) {
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase) + 2))},
                     {ldw(2, 1, 0)},
                     {halt()}});
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, BranchLoopSumsCorrectly) {
  // r1 = sum of 1..5 via a BRCT loop.
  // b0: pbr b1 <- loop head; r2 = 5 (counter)
  // b1 (loop): r1 += r2 ; r2 -= 1
  // b2: cmpp.gt p1 <- r2, 0
  // b3: brct b1, p1
  // b4: out r1; halt
  auto sim = sim_of({{pbr(1, 1), mov(2, I(5))},
                     {add(1, R(1), R(2)), Instruction::make(Op::SUB, 2, R(2), I(1))},
                     {cmpp(Op::CMPP_GT, 1, 2, R(2), I(0))},
                     {brct(1, 1)},
                     {out(R(1)), halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(1), 15u);
  EXPECT_EQ(sim.stats().branches_taken, 4u);
  EXPECT_EQ(sim.stats().branches_not_taken, 1u);
}

TEST(Sim, BrcfBranchesOnFalse) {
  auto sim = sim_of({{pbr(1, 3), cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},
                     {brcf(1, 1)},           // p1 false -> taken
                     {mov(5, I(111)), halt()},  // skipped
                     {mov(5, I(222)), halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(5), 222u);
}

TEST(Sim, BranchAndLinkAndReturn) {
  // Call bundle 3 (writes r7 = 42), return via BRR, then halt.
  auto sim = sim_of({{pbr(1, 3)},
                     {Instruction::make(Op::BRL, 2, R(1))},  // r2 <- 2
                     {out(R(7)), halt()},                    // return lands here
                     {mov(7, I(42))},
                     {Instruction::make(Op::BRR, 0, R(2))}});
  sim.run();
  EXPECT_EQ(sim.gpr(2), 2u);  // return bundle address
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 42u);
}

TEST(Sim, FirstTakenBranchInBundleWins) {
  ProcessorConfig cfg;
  auto sim = sim_of({{pbr(1, 2), pbr(2, 3)},
                     {bru(1), bru(2)},
                     {mov(5, I(1)), halt()},
                     {mov(5, I(2)), halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.gpr(5), 1u);
}

TEST(Sim, HaltStopsExecution) {
  auto sim = sim_of({{halt()}, {mov(1, I(5))}});
  sim.run();
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.gpr(1), 0u);
  EXPECT_FALSE(sim.step());  // stepping a halted machine is a no-op
}

TEST(Sim, PredicatedHaltIsNullified) {
  auto sim = sim_of({{cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},  // p1 = false
                     {Instruction::make(Op::HALT, 0, {}, {}, 1)},
                     {mov(3, I(7))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(3), 7u);
}

TEST(Sim, PcPastEndFaults) {
  auto sim = sim_of({{mov(1, I(1))}});  // no halt
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, BranchPastEndFaults) {
  auto sim = sim_of({{pbr(1, 7)}, {bru(1)}, {halt()}});
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, CycleLimitRaises) {
  SimOptions opts;
  opts.max_cycles = 100;
  // Infinite loop: bundle 0 branches to itself.
  Program p = make_program(ProcessorConfig{}, {{pbr(1, 1)}, {bru(1)}});
  EpicSimulator sim(std::move(p), {}, opts);
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, CustomOpExecutes) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  auto sim = sim_of({{mov(1, I(2))},
                     {Instruction::make(Op::CUSTOM0, 2, R(1), I(1))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.gpr(2), 1u);  // rotr(2,1) == 1
}

TEST(Sim, UnsupportedOpFaults) {
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  // Build the program under a permissive config, then swap in the
  // trimmed config to mimic running foreign code on a lean core.
  Program p = make_program(ProcessorConfig{},
                           {{Instruction::make(Op::DIV, 1, R(2), I(3))},
                            {halt()}});
  p.config = cfg;
  EpicSimulator sim(std::move(p));
  EXPECT_THROW(sim.run(), SimError);
}

TEST(Sim, NarrowDatapathWraps) {
  ProcessorConfig cfg;
  cfg.datapath_width = 16;
  auto sim = sim_of({{mov(1, I(0x7FFF))},
                     {add(2, R(1), I(1))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.gpr(2), 0x8000u);  // wraps within 16 bits, no bit 16
}

TEST(Sim, ResetRestoresInitialState) {
  auto sim = sim_of({{mov(1, I(5)), out(I(9))}, {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(1), 5u);
  sim.reset();
  EXPECT_EQ(sim.gpr(1), 0u);
  EXPECT_FALSE(sim.halted());
  EXPECT_TRUE(sim.output().empty());
  sim.run();
  EXPECT_EQ(sim.gpr(1), 5u);
  EXPECT_EQ(sim.output().size(), 1u);
}

TEST(Sim, DataImageLoadsAtDataBase) {
  Program p = make_program(ProcessorConfig{},
                           {{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                            {ldw(2, 1, 0)},
                            {halt()}});
  p.data = {0xDE, 0xAD, 0xBE, 0xEF};
  EpicSimulator sim(std::move(p));
  sim.run();
  EXPECT_EQ(sim.gpr(2), 0xDEADBEEFu);
}

TEST(Sim, TraceCollectsBundles) {
  SimOptions opts;
  opts.collect_trace = true;
  Program p = make_program(ProcessorConfig{},
                           {{mov(1, I(5)), mov(2, I(6))}, {halt()}});
  EpicSimulator sim(std::move(p), {}, opts);
  sim.run();
  ASSERT_EQ(sim.trace().size(), 2u);
  EXPECT_NE(sim.trace()[0].text.find("mov r1, #5"), std::string::npos);
  EXPECT_NE(sim.trace()[0].text.find(" || "), std::string::npos);
}

}  // namespace
}  // namespace cepic
