// Soundness differential harness (docs/ANALYSIS.md "Soundness"): every
// fact the guard-aware interval analysis proves about an ir::Function is
// checked against real executions of the reference interpreter over the
// seeded random-module fuzz corpus. The contract:
//
//  * whenever block b is entered, every vreg's observed value lies in
//    the analysis' entry state in[b][vreg];
//  * a block proven non-executable is never entered;
//  * a recorded GuardFact commits exactly as predicted, and a recorded
//    BranchFact always goes the predicted way.
//
// Failures name the generator seed so a violation reproduces directly.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/intervals.hpp"
#include "ir/interp.hpp"
#include "ir/parse.hpp"
#include "ir/verify.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

/// Precomputed analysis results for every function of a module, plus
/// fact lookup tables, keyed by function name.
struct FnFacts {
  analysis::IntervalAnalysis ia;
  std::map<std::pair<int, int>, bool> guard_commits;  // (block, inst)
  std::map<int, bool> branch_then;                    // block -> then_taken
};

class SoundnessObserver : public ir::InterpObserver {
 public:
  SoundnessObserver(const ir::Module& module, std::uint64_t seed)
      : seed_(seed) {
    for (const ir::Function& fn : module.functions) {
      const analysis::Cfg cfg = analysis::Cfg::build(fn);
      FnFacts facts;
      facts.ia = analysis::compute_intervals(module, fn, cfg);
      for (const auto& gf : facts.ia.guard_facts) {
        facts.guard_commits[{gf.block, gf.inst}] = gf.commits;
      }
      for (const auto& bf : facts.ia.branch_facts) {
        facts.branch_then[bf.block] = bf.then_taken;
      }
      by_fn_.emplace(fn.name, std::move(facts));
    }
  }

  void on_block_entry(const ir::Function& fn, int block,
                      std::span<const std::uint32_t> regs) override {
    ++blocks_observed;
    const FnFacts& facts = by_fn_.at(fn.name);
    if (!facts.ia.executable[block]) {
      ADD_FAILURE() << "seed " << seed_ << ": @" << fn.name << " .b" << block
                    << " was proven unreachable but executed";
      return;
    }
    const std::vector<analysis::AbsVal>& in = facts.ia.in[block];
    for (ir::VReg v = 1; v < fn.next_vreg; ++v) {
      const analysis::AbsVal& av = in[v];
      const std::int32_t observed = static_cast<std::int32_t>(regs[v]);
      if (av.is_bottom()) {
        ADD_FAILURE() << "seed " << seed_ << ": @" << fn.name << " .b"
                      << block << " entered with %" << v
                      << " = " << observed
                      << " but the analysis proved it has no value";
        continue;
      }
      const analysis::Interval iv = facts.ia.concretize(av);
      if (!iv.contains(observed)) {
        ADD_FAILURE() << "seed " << seed_ << ": @" << fn.name << " .b"
                      << block << " entry: %" << v << " observed "
                      << observed << " outside proven interval ["
                      << iv.lo << ", " << iv.hi << "]";
      } else {
        ++values_checked;
      }
    }
  }

  void on_guard(const ir::Function& fn, int block, int inst,
                bool committed) override {
    const FnFacts& facts = by_fn_.at(fn.name);
    const auto it = facts.guard_commits.find({block, inst});
    if (it == facts.guard_commits.end()) return;
    ++guards_checked;
    EXPECT_EQ(committed, it->second)
        << "seed " << seed_ << ": @" << fn.name << " .b" << block
        << " inst " << inst << ": guard fact says commits="
        << it->second << " but execution " << (committed ? "committed" : "nullified");
  }

  void on_branch(const ir::Function& fn, int block, bool then_taken) override {
    const FnFacts& facts = by_fn_.at(fn.name);
    const auto it = facts.branch_then.find(block);
    if (it == facts.branch_then.end()) return;
    ++branches_checked;
    EXPECT_EQ(then_taken, it->second)
        << "seed " << seed_ << ": @" << fn.name << " .b" << block
        << ": branch fact says then_taken=" << it->second
        << " but execution went the other way";
  }

  std::uint64_t blocks_observed = 0;
  std::uint64_t values_checked = 0;
  std::uint64_t guards_checked = 0;
  std::uint64_t branches_checked = 0;

 private:
  std::uint64_t seed_;
  std::map<std::string, FnFacts> by_fn_;
};

TEST(AnalysisSoundness, RandomModulesAgreeWithInterpreter) {
  std::uint64_t completed = 0;
  std::uint64_t faulted = 0;
  std::uint64_t blocks = 0, values = 0, guards = 0, branches = 0;

  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Prng rng(seed);
    const ir::Module m = testutil::random_module(rng);
    SCOPED_TRACE(cat("seed ", seed));

    SoundnessObserver obs(m, seed);
    // Random modules may loop forever or recurse unboundedly; a small
    // step budget turns those into a SimError. Observations made before
    // any fault (runaway, unknown callee, bad memory) still count: the
    // soundness contract covers every prefix of every execution.
    ir::InterpOptions io;
    io.max_steps = 20'000;
    ir::Interpreter interp(m, io);
    interp.set_observer(&obs);

    const ir::Function& main_fn = m.functions.front();
    std::vector<std::uint32_t> args;
    for (std::size_t i = 0; i < main_fn.params.size(); ++i) {
      args.push_back(rng.next_u32());
    }
    try {
      interp.run("main", args);
      ++completed;
    } catch (const SimError&) {
      ++faulted;
    }
    blocks += obs.blocks_observed;
    values += obs.values_checked;
    guards += obs.guards_checked;
    branches += obs.branches_checked;
  }

  // The corpus must actually exercise the contract, not pass vacuously.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(blocks, 0u);
  EXPECT_GT(values, 0u);
  EXPECT_GT(guards, 0u);
  EXPECT_GT(branches, 0u);
}

// Deterministic regression: a module with a statically-decided guard, a
// constant branch and an unreachable block, checked end to end through
// the observer (so a regression in either the analysis or the hook
// placement fails here with a readable fixture, not a fuzz seed).
TEST(AnalysisSoundness, HandwrittenModuleFactsHold) {
  const ir::Module m = ir::parse_module(
      "int main() frame=0 {\n"
      ".b0:\n"
      "  %1 = 7\n"
      "  %2 = cmp.lt %1, 10\n"
      "  [%2] %3 = 1\n"
      "  [!%2] %4 = 2\n"
      "  condbr %2 ? .b1 : .b2\n"
      ".b1:\n"
      "  ret %3\n"
      ".b2:\n"
      "  ret 0\n"
      "}\n");
  ir::verify_module(m, /*require_main=*/true);

  SoundnessObserver obs(m, /*seed=*/0);
  ir::Interpreter interp(m);
  interp.set_observer(&obs);
  const ir::InterpResult r = interp.run("main");
  EXPECT_EQ(r.ret, 1u);
  // Both guards and the branch are static, so all three fact kinds fire.
  EXPECT_EQ(obs.guards_checked, 2u);
  EXPECT_EQ(obs.branches_checked, 1u);
  EXPECT_GE(obs.blocks_observed, 2u);
}

}  // namespace
}  // namespace cepic
