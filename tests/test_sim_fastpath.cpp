// Three-way differential validation of the simulator's execution tiers
// (docs/SIM.md "Execution tiers"): the interpretive decode-every-cycle
// reference, the pre-decoded fast path (sim/decode.hpp) and the
// block-level threaded-code tier (sim/threaded.hpp). For the same
// program and SimOptions all tiers must produce bit-identical SimStats
// (cycles and every stall counter, the bundle-width histogram), the
// same OUT stream, the same final architectural state (registers, pc,
// memory image) and the same fault messages — across compiled
// workloads on a codegen x simulation-only configuration grid, across
// the fuzz corpus of random programs, and across the error paths. The
// threaded tier runs twice: with the default promotion threshold
// (blocks compile mid-run) and with threshold 1 (everything compiles
// on first touch), so both the cold decode-tier path and the compiled
// blocks are exercised on every comparison.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "sim/simulator.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace cepic {
namespace {

using namespace testutil;

/// Everything observable about one simulation, for exact comparison.
struct Observed {
  std::string error;  ///< SimError text; empty when the run halted
  bool halted = false;
  SimStats stats;
  std::vector<std::uint32_t> output;
  std::uint32_t pc = 0;
  std::vector<std::uint32_t> gprs;
  std::vector<std::uint32_t> preds;
  std::vector<std::uint32_t> btrs;
  std::vector<std::uint8_t> memory;
  std::vector<std::string> trace;
};

Observed observe(const Program& program, const CustomOpTable& custom,
                 SimOptions options, ExecTier tier,
                 unsigned hot_threshold = 8) {
  options.exec_tier = tier;
  options.threaded_hot_threshold = hot_threshold;
  EpicSimulator sim(program, custom, options);
  Observed o;
  try {
    sim.run();
    // Decode cache and threaded blocks must survive reset(): run the
    // program again and keep the second run's results (they must equal
    // the first's — the interpretive side establishes that
    // independently).
    sim.reset();
    sim.run();
  } catch (const SimError& e) {
    o.error = e.what();
  }
  // The run-level marker reports the tier that executed (no timeline is
  // attached here, so Threaded is never pinned).
  EXPECT_EQ(sim.stats().exec_tier, tier);
  EXPECT_FALSE(sim.stats().timeline_pinned);
  o.halted = sim.halted();
  o.stats = sim.stats();
  o.output = sim.output();
  o.pc = sim.pc();
  const ProcessorConfig& cfg = sim.program().config;
  for (unsigned i = 0; i < cfg.num_gprs; ++i) o.gprs.push_back(sim.gpr(i));
  for (unsigned i = 0; i < cfg.num_preds; ++i) {
    o.preds.push_back(sim.pred(i) ? 1 : 0);
  }
  for (unsigned i = 0; i < cfg.num_btrs; ++i) o.btrs.push_back(sim.btr(i));
  const auto raw = sim.memory().raw();
  o.memory.assign(raw.begin(), raw.end());
  for (const TraceEntry& t : sim.trace()) {
    o.trace.push_back(cat(t.cycle, "@", t.bundle, ": ", t.text));
  }
  return o;
}

void expect_matches(const Observed& got, const Observed& want,
                    const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.error, want.error);
  EXPECT_EQ(got.halted, want.halted);
  EXPECT_EQ(got.stats, want.stats)
      << "cycles " << got.stats.cycles << " vs " << want.stats.cycles
      << ", scoreboard " << got.stats.stall_scoreboard << " vs "
      << want.stats.stall_scoreboard << ", ports "
      << got.stats.stall_reg_ports << " vs " << want.stats.stall_reg_ports;
  EXPECT_EQ(got.output, want.output);
  EXPECT_EQ(got.pc, want.pc);
  EXPECT_EQ(got.gprs, want.gprs);
  EXPECT_EQ(got.preds, want.preds);
  EXPECT_EQ(got.btrs, want.btrs);
  EXPECT_EQ(got.memory == want.memory, true) << "final memory images differ";
  EXPECT_EQ(got.trace, want.trace);
}

void expect_identical(const Program& program, const CustomOpTable& custom,
                      const SimOptions& options) {
  const Observed interp = observe(program, custom, options, ExecTier::Interp);
  expect_matches(observe(program, custom, options, ExecTier::Decode), interp,
                 "decode vs interp");
  expect_matches(observe(program, custom, options, ExecTier::Threaded),
                 interp, "threaded(hot=8) vs interp");
  expect_matches(
      observe(program, custom, options, ExecTier::Threaded,
              /*hot_threshold=*/1),
      interp, "threaded(hot=1, all blocks compiled) vs interp");
}

// ---- compiled workloads across the configuration grid ----------------

TEST(SimFastPath, WorkloadAcrossCodegenAndSimGrid) {
  // Codegen-relevant axes (each compiles separately) crossed with
  // simulation-only axes (re-stamped onto the same Program, exactly as
  // pipeline::run_batch does).
  const workloads::Workload w = workloads::make_dct(8);
  for (const unsigned alus : {1u, 4u}) {
    for (const bool forwarding : {false, true}) {
      for (const unsigned ports : {4u, 8u}) {
        ProcessorConfig cfg;
        cfg.num_alus = alus;
        cfg.forwarding = forwarding;
        cfg.reg_port_budget = ports;
        const auto compiled = pipeline::compile_once(w.minic_source, cfg);
        for (const unsigned stages : {2u, 4u}) {
          for (const bool contention : {false, true}) {
            SCOPED_TRACE(cat("alus=", alus, " fwd=", forwarding,
                             " ports=", ports, " stages=", stages,
                             " contention=", contention));
            Program program = compiled.program;
            program.config.pipeline_stages = stages;
            program.config.unified_memory_contention = contention;
            expect_identical(program, {}, SimOptions{});
            // And the default (threaded) tier still computes the right
            // answer.
            EpicSimulator sim(program);
            sim.run();
            EXPECT_EQ(sim.output(), w.expected_output);
          }
        }
      }
    }
  }
}

TEST(SimFastPath, MoreWorkloadsOnTightAndDefaultConfigs) {
  const std::vector<workloads::Workload> ws = {workloads::make_sha(8),
                                               workloads::make_dijkstra(8)};
  std::vector<ProcessorConfig> cfgs(2);
  cfgs[1].num_alus = 1;
  cfgs[1].forwarding = false;
  cfgs[1].reg_port_budget = 4;
  cfgs[1].unified_memory_contention = true;
  for (const auto& w : ws) {
    for (const ProcessorConfig& cfg : cfgs) {
      SCOPED_TRACE(cat(w.name, " on ", cfg.summary()));
      const auto compiled = pipeline::compile_once(w.minic_source, cfg);
      expect_identical(compiled.program, {}, SimOptions{});
    }
  }
}

TEST(SimFastPath, TraceOutputIsIdentical) {
  const workloads::Workload w = workloads::make_dct(8);
  const auto compiled =
      pipeline::compile_once(w.minic_source, ProcessorConfig{});
  SimOptions options;
  options.collect_trace = true;
  options.trace_limit = 512;
  expect_identical(compiled.program, {}, options);
}

// ---- the fuzz corpus -------------------------------------------------

TEST(SimFastPath, FuzzProgramsMatchAcrossTheConfigGrid) {
  // Same generators and config grid as the round-trip fuzz suite; these
  // programs exercise every op class, predication, raw custom ops and
  // the fault paths (cycle limit, off-the-end pc after a nullified
  // guarded HALT).
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0xFA57ull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 40; ++i) {
      const Program p = random_program(rng, nc.cfg);
      SCOPED_TRACE(cat("iteration ", i));
      SimOptions options;
      options.max_cycles = 5'000;
      expect_identical(p, CustomOpTable::for_names(nc.cfg.custom_ops),
                       options);
    }
  }
}

// ---- fault-path equivalence ------------------------------------------

TEST(SimFastPath, UnsupportedOpFaultsIdenticallyOnFirstTouch) {
  // Build a DIV under a config that has it, then trim the feature
  // post-build (the assembler would reject it otherwise). All tiers
  // must fault with the same message — and only when the op is reached,
  // not at construction (the threaded tier routes such bundles to its
  // per-bundle fallback).
  ProcessorConfig cfg;
  Program p = make_program(
      cfg, {{mov(1, I(6))},
            {op3(Op::DIV, 2, R(1), I(2))},
            {halt()}});
  p.config.alu.has_div = false;
  expect_identical(p, {}, SimOptions{});
  const Observed threaded =
      observe(p, {}, SimOptions{}, ExecTier::Threaded, /*hot_threshold=*/1);
  EXPECT_NE(
      threaded.error.find("`div` not implemented on this customisation"),
      std::string::npos)
      << threaded.error;

  // A never-executed unsupported op must not fault at all.
  Program skip = make_program(
      cfg, {{pbr(1, 3)},
            {bru(1)},
            {op3(Op::DIV, 2, R(1), I(2))},  // jumped over
            {halt()}});
  skip.config.alu.has_div = false;
  expect_identical(skip, {}, SimOptions{});
  EXPECT_TRUE(observe(skip, {}, SimOptions{}, ExecTier::Threaded,
                      /*hot_threshold=*/1)
                  .error.empty());
}

TEST(SimFastPath, CycleLimitFaultsIdenticallyAndNamesTheBundle) {
  SimOptions options;
  options.max_cycles = 100;
  const Program loop = make_program(ProcessorConfig{},
                                    {{pbr(1, 0)}, {bru(1)}, {halt()}});
  expect_identical(loop, {}, options);
  const Observed threaded =
      observe(loop, {}, options, ExecTier::Threaded, /*hot_threshold=*/1);
  EXPECT_NE(threaded.error.find("cycle limit exceeded (100 cycles)"),
            std::string::npos)
      << threaded.error;
  EXPECT_NE(threaded.error.find("at bundle"), std::string::npos)
      << threaded.error;
}

TEST(SimFastPath, BranchPastEndFaultsIdentically) {
  const Program p = make_program(ProcessorConfig{},
                                 {{pbr(1, 9)}, {bru(1)}, {halt()}});
  expect_identical(p, {}, SimOptions{});
  const Observed threaded =
      observe(p, {}, SimOptions{}, ExecTier::Threaded, /*hot_threshold=*/1);
  EXPECT_NE(threaded.error.find("branch to bundle 9 past end of program"),
            std::string::npos)
      << threaded.error;
}

TEST(SimFastPath, PcPastEndFaultsIdentically) {
  // No HALT: execution runs off the end of the program.
  const Program p = make_program(ProcessorConfig{}, {{mov(1, I(1))}});
  expect_identical(p, {}, SimOptions{});
  const Observed threaded =
      observe(p, {}, SimOptions{}, ExecTier::Threaded, /*hot_threshold=*/1);
  EXPECT_NE(threaded.error.find("past end of program"), std::string::npos)
      << threaded.error;
}

TEST(SimFastPath, OutOfRangeRegisterFallsBackToInterpretivePath) {
  // make_program does not validate register indices; the interpretive
  // path faults on the CEPIC_CHECK at execute time. The decoder flags
  // such bundles use_legacy, every tier runs them through the
  // interpretive path, and the fault behaviour (a thrown Error, not
  // silence) is preserved.
  ProcessorConfig cfg;
  cfg.num_gprs = 16;
  const Program p = make_program(cfg, {{mov(40, I(1))}, {halt()}});
  for (const ExecTier tier :
       {ExecTier::Interp, ExecTier::Decode, ExecTier::Threaded}) {
    SCOPED_TRACE(to_string(tier));
    SimOptions options;
    options.exec_tier = tier;
    options.threaded_hot_threshold = 1;
    EXPECT_THROW(
        {
          EpicSimulator sim(p, {}, options);
          sim.run();
        },
        std::exception);
  }
}

TEST(SimFastPath, StatsEqualityOperatorSeesEveryCounter) {
  SimStats a;
  SimStats b;
  EXPECT_TRUE(a == b);
  b.stall_reg_ports = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.bundle_width_hist[3] = 1;
  EXPECT_FALSE(a == b);
  // The tier markers record which tier ran — the one thing the tiers
  // legitimately disagree on — so equality must ignore them.
  b = a;
  b.exec_tier = ExecTier::Threaded;
  b.timeline_pinned = true;
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace cepic
