// End-to-end cross-execution equivalence: every MiniC program in the
// corpus must produce the identical output stream and return value on
//   (a) the IR interpreter (golden),
//   (b) the EPIC simulator, across processor customisations,
//   (c) with and without optimisation / scheduling / if-conversion.
// This is the strongest compiler-correctness property in the suite.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"

namespace cepic {
namespace {

const char* kPrograms[] = {
    // Arithmetic mix with mul/div/rem and bit ops.
    "int main() {"
    "  int acc = 0;"
    "  for (int i = 1; i <= 20; i++) {"
    "    acc += (i * 7) % 5 + (acc / (i + 1)) - (i << 2) + (acc >>> 3);"
    "    acc ^= i; }"
    "  out(acc); return acc & 0xFF; }",
    // Array workloads with helper functions (exercises calls + inliner).
    "int buf[16];\n"
    "void fill(int a[], int n, int seed) {"
    "  for (int i = 0; i < n; i++) { seed = seed * 1103 + 12345;"
    "    a[i] = (seed >>> 8) % 100; } }\n"
    "int sum(int a[], int n) { int s = 0;"
    "  for (int i = 0; i < n; i++) s += a[i]; return s; }\n"
    "int main() { fill(buf, 16, 7); out(sum(buf, 16));"
    "  return sum(buf, 8); }",
    // Branch-heavy: sorting a small array (bubble sort).
    "int v[8] = {5, 2, 8, 1, 9, 3, 7, 4};\n"
    "int main() {"
    "  for (int i = 0; i < 8; i++)"
    "    for (int j = 0; j + 1 < 8 - i; j++)"
    "      if (v[j] > v[j+1]) { int t = v[j]; v[j] = v[j+1]; v[j+1] = t; }"
    "  for (int i = 0; i < 8; i++) out(v[i]);"
    "  return v[0]; }",
    // Recursion + locals.
    "int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }\n"
    "int main() { out(gcd(252, 105)); out(gcd(17, 5)); return gcd(48, 36); }",
    // Strings, bytes in words, xorshift PRNG.
    "int key[] = \"CEPIC\";\n"
    "int main() { int s = 1; int h = 0;"
    "  for (int i = 0; i < 5; i++) {"
    "    s ^= s << 13; s ^= s >>> 17; s ^= s << 5;"
    "    h = h * 31 + (key[i] ^ (s & 0xFF)); }"
    "  out(h); return h; }",
    // Guarded-store pattern (Dijkstra relax) + min/max builtins.
    "int dist[6] = {0, 1000, 1000, 1000, 1000, 1000};\n"
    "int w[36] = {0,7,9,0,0,14, 7,0,10,15,0,0, 9,10,0,11,0,2,"
    "             0,15,11,0,6,0, 0,0,0,6,0,9, 14,0,2,0,9,0};\n"
    "int main() {"
    "  int done[6]; for (int i = 0; i < 6; i++) done[i] = 0;"
    "  for (int iter = 0; iter < 6; iter++) {"
    "    int best = 100000; int u = -1;"
    "    for (int i = 0; i < 6; i++)"
    "      if (!done[i] && dist[i] < best) { best = dist[i]; u = i; }"
    "    if (u < 0) break;"
    "    done[u] = 1;"
    "    for (int v2 = 0; v2 < 6; v2++) {"
    "      int wt = w[u * 6 + v2];"
    "      if (wt != 0) {"
    "        int alt = dist[u] + wt;"
    "        if (alt < dist[v2]) dist[v2] = alt; } } }"
    "  for (int i = 0; i < 6; i++) out(dist[i]);"
    "  return dist[4]; }",
    // Deep expression trees for the scheduler.
    "int main() { int a = 3; int b = 5; int c = 7; int d = 11;"
    "  int r = ((a*b + c*d) * (a*c - b*d) + (a*d + b*c) * (a*b - c*d))"
    "        ^ ((a+b) * (c+d) * (a-b) * (c-d));"
    "  out(r); return r; }",
};

ir::InterpResult golden(const char* src) {
  ir::Module m = minic::compile_to_ir(src);
  return ir::Interpreter(m).run();
}

void expect_match(const char* src, const ProcessorConfig& cfg,
                  const pipeline::CodegenOptions& options) {
  const ir::InterpResult gold = golden(src);
  EpicSimulator sim = pipeline::run_once(src, cfg, options);
  EXPECT_EQ(sim.output(), gold.output) << src;
  EXPECT_EQ(sim.gpr(3), gold.ret) << src;
}

struct E2eConfig {
  const char* name;
  unsigned alus;
  unsigned issue;
  bool optimize;
  bool schedule;
  bool if_convert;
};

class E2eEpic : public ::testing::TestWithParam<E2eConfig> {};

TEST_P(E2eEpic, MatchesInterpreterOnCorpus) {
  const E2eConfig& pc = GetParam();
  ProcessorConfig cfg;
  cfg.num_alus = pc.alus;
  cfg.issue_width = pc.issue;
  pipeline::CodegenOptions options;
  options.optimize = pc.optimize;
  options.backend.schedule = pc.schedule;
  options.opt.if_convert = pc.if_convert;
  for (const char* src : kPrograms) {
    expect_match(src, cfg, options);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, E2eEpic,
    ::testing::Values(
        E2eConfig{"alu4_full", 4, 4, true, true, true},
        E2eConfig{"alu1_full", 1, 4, true, true, true},
        E2eConfig{"alu2_issue2", 2, 2, true, true, true},
        E2eConfig{"alu3_issue1", 3, 1, true, true, true},
        E2eConfig{"unoptimized", 4, 4, false, true, true},
        E2eConfig{"unscheduled", 4, 4, true, false, true},
        E2eConfig{"no_ifconvert", 4, 4, true, true, false}),
    [](const ::testing::TestParamInfo<E2eConfig>& info) {
      return info.param.name;
    });

TEST(E2eEpic, SmallRegisterFilesStillWork) {
  ProcessorConfig cfg;
  cfg.num_gprs = 16;  // heavy spilling
  cfg.num_preds = 4;
  cfg.num_btrs = 2;
  for (const char* src : kPrograms) {
    expect_match(src, cfg, {});
  }
}

TEST(E2eEpic, NoForwardingStillCorrect) {
  ProcessorConfig cfg;
  cfg.forwarding = false;
  expect_match(kPrograms[2], cfg, {});
}

TEST(E2eEpic, MemoryContentionModelStillCorrect) {
  ProcessorConfig cfg;
  cfg.unified_memory_contention = true;
  expect_match(kPrograms[1], cfg, {});
}

TEST(E2eEpic, MoreAlusNeverSlower) {
  // The headline customisation claim: adding ALUs monotonically helps
  // (or at least does not hurt) an arithmetic-rich program.
  const char* src = kPrograms[6];
  std::uint64_t prev = ~std::uint64_t{0};
  for (unsigned alus : {1u, 2u, 4u}) {
    ProcessorConfig cfg;
    cfg.num_alus = alus;
    EpicSimulator sim = pipeline::run_once(src, cfg);
    EXPECT_LE(sim.stats().cycles, prev) << alus << " ALUs";
    prev = sim.stats().cycles;
  }
}

TEST(E2eEpic, SchedulingReducesCycles) {
  const char* src = kPrograms[6];
  pipeline::CodegenOptions sched;
  pipeline::CodegenOptions unsched;
  unsched.backend.schedule = false;
  const auto fast = pipeline::run_once(src, ProcessorConfig{}, sched);
  const auto slow = pipeline::run_once(src, ProcessorConfig{}, unsched);
  EXPECT_LT(fast.stats().cycles, slow.stats().cycles);
}

TEST(E2eEpic, IfConversionReducesBranches) {
  const char* src = kPrograms[5];  // Dijkstra-like
  pipeline::CodegenOptions with_ic;
  pipeline::CodegenOptions without_ic;
  without_ic.opt.if_convert = false;
  const auto a = pipeline::run_once(src, ProcessorConfig{}, with_ic);
  const auto b = pipeline::run_once(src, ProcessorConfig{}, without_ic);
  EXPECT_LT(a.stats().branches_taken + a.stats().branches_not_taken,
            b.stats().branches_taken + b.stats().branches_not_taken);
}

TEST(E2eEpic, CustomRotrInstructionWorks) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  // No MiniC surface syntax for custom ops yet — drive via assembly in
  // test_assembler; here just check the config threads through the
  // driver (compile something unrelated on the custom-enabled core).
  expect_match(kPrograms[0], cfg, {});
}

}  // namespace
}  // namespace cepic
