// Tests for the paper's §6 future-work features implemented here:
// parameterised pipeline depth, automatic custom-instruction candidate
// generation, and the power model.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "fpga/model.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "opt/custom_candidates.hpp"
#include "opt/opt.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace cepic {
namespace {

using namespace testutil;

// ---- pipeline depth ----

TEST(PipelineDepth, ConfigValidatesAndRoundtrips) {
  ProcessorConfig cfg;
  cfg.pipeline_stages = 3;
  cfg.validate();
  EXPECT_EQ(ProcessorConfig::from_text(cfg.to_text()), cfg);
  cfg.pipeline_stages = 1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.pipeline_stages = 5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(PipelineDepth, TakenBranchBubblesScaleWithDepth) {
  for (unsigned stages : {2u, 3u, 4u}) {
    ProcessorConfig cfg;
    cfg.pipeline_stages = stages;
    Program p = make_program(cfg, {{pbr(1, 2)}, {bru(1)}, {halt()}});
    EpicSimulator sim(std::move(p));
    sim.run();
    EXPECT_EQ(sim.stats().branch_bubbles, stages - 1) << stages;
    EXPECT_EQ(sim.stats().cycles, 3u + (stages - 1)) << stages;
  }
}

TEST(PipelineDepth, StraightLineCodeUnaffected) {
  for (unsigned stages : {2u, 4u}) {
    ProcessorConfig cfg;
    cfg.pipeline_stages = stages;
    Program p = make_program(cfg, {{mov(1, I(1))}, {mov(2, I(2))}, {halt()}});
    EpicSimulator sim(std::move(p));
    sim.run();
    EXPECT_EQ(sim.stats().cycles, 3u);
  }
}

TEST(PipelineDepth, DeeperPipeClocksHigherCostsSlices) {
  ProcessorConfig two;
  ProcessorConfig three = two;
  three.pipeline_stages = 3;
  const auto e2 = fpga::estimate(two);
  const auto e3 = fpga::estimate(three);
  EXPECT_GT(e3.fmax_mhz, e2.fmax_mhz);
  EXPECT_GT(e3.slices, e2.slices);
  EXPECT_NEAR(e3.fmax_mhz, 41.8 * 1.35, 0.1);
}

TEST(PipelineDepth, EndToEndStillCorrectAndBranchCodeSlower) {
  const char* src =
      "int main() { int s = 0;"
      " for (int i = 0; i < 50; i++) { if (i % 3 == 0) s += i; else s -= 1; }"
      " out(s); return s; }";
  ir::Module m = minic::compile_to_ir(src);
  const auto gold = ir::Interpreter(m).run();

  std::uint64_t prev = 0;
  for (unsigned stages : {2u, 3u, 4u}) {
    ProcessorConfig cfg;
    cfg.pipeline_stages = stages;
    pipeline::CodegenOptions options;
    options.opt.if_convert = false;  // keep the branches for the test
    EpicSimulator sim = pipeline::run_once(src, cfg, options);
    EXPECT_EQ(sim.output(), gold.output) << stages;
    if (prev != 0) {
      EXPECT_GT(sim.stats().cycles, prev) << stages;
    }
    prev = sim.stats().cycles;
  }
}

// ---- automatic custom-instruction candidates ----

TEST(CustomCandidates, FindsRotateInSha) {
  ir::Module m = minic::compile_to_ir(workloads::make_sha(8).minic_source);
  opt::optimize(m);
  const auto candidates = opt::find_custom_candidates(m);
  ASSERT_FALSE(candidates.empty());
  // The SHA sigma rotations must surface, mapped to the builtin rotr.
  bool found = false;
  for (const auto& c : candidates) {
    if (c.builtin == "rotr") {
      found = true;
      EXPECT_GE(c.occurrences, 8u);  // many rotations per round function
      EXPECT_EQ(c.ops_saved, 2u);
    }
  }
  EXPECT_TRUE(found) << opt::format_candidates(candidates);
  // And it should rank at (or near) the top by score.
  EXPECT_EQ(candidates[0].builtin, "rotr");
}

TEST(CustomCandidates, FindsMacInDct) {
  ir::Module m = minic::compile_to_ir(workloads::make_dct(8).minic_source);
  opt::optimize(m);
  const auto candidates = opt::find_custom_candidates(m);
  bool mac = false;
  for (const auto& c : candidates) {
    if (c.pattern.find("multiply-accumulate") != std::string::npos) {
      mac = true;
      EXPECT_GT(c.occurrences, 50u);  // 7 adds of products per 1D output
    }
  }
  EXPECT_TRUE(mac) << opt::format_candidates(candidates);
}

TEST(CustomCandidates, LoopOccurrencesOutweighStraightLine) {
  // One rotate in a hot loop must outrank two in straight-line code.
  const char* src =
      "int g[1];\n"
      "int main() {"
      "  int x = g[0];"
      "  int a = (x >>> 3) | (x << 29);"   // straight-line rotate 1
      "  int b = (a >>> 5) | (a << 27);"   // straight-line rotate 2
      "  int s = b;"
      "  for (int i = 0; i < 10; i++) {"
      "    s = (s >>> 7) | (s << 25);"     // loop rotate
      "    s += i * 3 + (s >>> 1);"        // loop pair patterns
      "  }"
      "  out(s); return s; }";
  ir::Module m = minic::compile_to_ir(src);
  opt::optimize(m);
  const auto candidates = opt::find_custom_candidates(m);
  ASSERT_FALSE(candidates.empty());
  const auto* rot = [&]() -> const opt::CustomCandidate* {
    for (const auto& c : candidates) {
      if (c.builtin == "rotr") return &c;
    }
    return nullptr;
  }();
  ASSERT_NE(rot, nullptr);
  EXPECT_EQ(rot->occurrences, 3u);
  // Two straight-line (weight 1 each) + one loop (weight 10) = 12.
  EXPECT_GE(rot->weighted, 12u);
}

TEST(CustomCandidates, EmptyModuleHasNone) {
  ir::Module m = minic::compile_to_ir("int main() { return 0; }");
  EXPECT_TRUE(opt::find_custom_candidates(m).empty());
}

TEST(CustomCandidates, GuardedProducersAreNotFused) {
  // A guarded def's consumer cannot be fused (the intermediate is
  // conditional); the analysis must skip it rather than crash.
  const char* src =
      "int g[1];\n"
      "int main() { int x = g[0]; int t = 0;"
      " if (x > 0) t = x * 3;"
      " return t + 1; }";
  ir::Module m = minic::compile_to_ir(src);
  opt::optimize(m);  // if-converts the hammock -> guarded mul
  EXPECT_NO_THROW(opt::find_custom_candidates(m));
}

TEST(CustomCandidates, ReportMentionsConfigKey) {
  ir::Module m = minic::compile_to_ir(workloads::make_sha(8).minic_source);
  opt::optimize(m);
  const std::string report =
      opt::format_candidates(opt::find_custom_candidates(m));
  EXPECT_NE(report.find("custom_ops = rotr"), std::string::npos);
}

// ---- power model ----

TEST(PowerModel, ScalesWithAreaAndClock) {
  ProcessorConfig small;
  small.num_alus = 1;
  ProcessorConfig big;
  big.num_alus = 4;
  const auto p_small = fpga::estimate_power(fpga::estimate(small));
  const auto p_big = fpga::estimate_power(fpga::estimate(big));
  EXPECT_GT(p_big.total(), p_small.total());
  EXPECT_GT(p_big.dynamic_mw, p_small.dynamic_mw);
  EXPECT_GT(p_big.static_mw, p_small.static_mw);

  // Deeper pipeline -> higher clock -> more dynamic power.
  ProcessorConfig fast = big;
  fast.pipeline_stages = 3;
  EXPECT_GT(fpga::estimate_power(fpga::estimate(fast)).dynamic_mw,
            p_big.dynamic_mw);
}

TEST(PowerModel, ActivityScalesDynamicOnly) {
  const auto r = fpga::estimate(ProcessorConfig{});
  const auto idle = fpga::estimate_power(r, 0.05);
  const auto busy = fpga::estimate_power(r, 0.50);
  EXPECT_LT(idle.dynamic_mw, busy.dynamic_mw);
  EXPECT_DOUBLE_EQ(idle.static_mw, busy.static_mw);
}

TEST(PowerModel, DefaultLandsInHalfWattRegion) {
  const auto p = fpga::estimate_power(fpga::estimate(ProcessorConfig{}));
  EXPECT_GT(p.total(), 200.0);
  EXPECT_LT(p.total(), 1200.0);
  EXPECT_NE(p.report().find("mW"), std::string::npos);
}

}  // namespace
}  // namespace cepic
