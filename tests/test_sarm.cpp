// SARM baseline tests: cycle model microtests on hand-built programs,
// code-generation checks, and e2e equivalence against the interpreter.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "sarm/codegen.hpp"
#include "sarm/sim.hpp"

namespace cepic::sarm {
namespace {

SInst mk(SOp op, std::uint32_t rd, std::uint32_t rn, Operand2 op2,
         Cond cond = Cond::AL) {
  SInst i;
  i.op = op;
  i.cond = cond;
  i.rd = rd;
  i.rn = rn;
  i.op2 = op2;
  return i;
}

SarmSimulator sim_of(std::vector<SInst> code) {
  SProgram p;
  p.code = std::move(code);
  return SarmSimulator(std::move(p));
}

TEST(SarmSim, BasicAluAndHalt) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(5)),
      mk(SOp::Add, 2, 1, Operand2::immediate(7)),
      mk(SOp::Mul, 3, 1, Operand2::reg(2)),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(2), 12u);
  EXPECT_EQ(sim.reg(3), 60u);
  // 3 issued + halt issue + mul extra 2 = 6 cycles.
  EXPECT_EQ(sim.stats().cycles, 6u);
}

TEST(SarmSim, BarrelShifterOperand) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(3)),
      mk(SOp::Add, 2, 1, Operand2::reg(1, Shift::Lsl, 4)),  // 3 + 3*16
      mk(SOp::Mov, 3, 0, Operand2::reg(1, Shift::Asr, 1)),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(2), 51u);
  EXPECT_EQ(sim.reg(3), 1u);
  EXPECT_EQ(sim.stats().cycles, 4u);  // shifts are free
}

TEST(SarmSim, ConditionCodes) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(-3)),
      mk(SOp::Cmp, 0, 1, Operand2::immediate(2)),
      mk(SOp::Mov, 2, 0, Operand2::immediate(111), Cond::LT),
      mk(SOp::Mov, 3, 0, Operand2::immediate(222), Cond::GE),
      mk(SOp::Cmp, 0, 1, Operand2::immediate(-3)),
      mk(SOp::Mov, 4, 0, Operand2::immediate(1), Cond::EQ),
      // -3 unsigned is huge: HI should pass against 2.
      mk(SOp::Cmp, 0, 1, Operand2::immediate(2)),
      mk(SOp::Mov, 5, 0, Operand2::immediate(1), Cond::HI),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(2), 111u);
  EXPECT_EQ(sim.reg(3), 0u);  // cond failed
  EXPECT_EQ(sim.reg(4), 1u);
  EXPECT_EQ(sim.reg(5), 1u);
}

TEST(SarmSim, CondFailedStillCostsACycle) {
  auto sim = sim_of({
      mk(SOp::Cmp, 0, 0, Operand2::immediate(1)),          // 0 != 1
      mk(SOp::Mov, 2, 0, Operand2::immediate(9), Cond::EQ),  // fails
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.stats().cycles, 3u);
  // Only the conditional mov failed its condition.
  EXPECT_EQ(sim.stats().insts_executed - sim.stats().insts_committed, 1u);
}

TEST(SarmSim, TakenBranchPenalty) {
  SInst b = mk(SOp::B, 0, 0, {});
  b.target = 2;
  auto sim = sim_of({
      b,
      mk(SOp::Mov, 1, 0, Operand2::immediate(1)),  // skipped
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(1), 0u);
  // b (1+2 penalty) + halt (1) = 4.
  EXPECT_EQ(sim.stats().cycles, 4u);
  EXPECT_EQ(sim.stats().branches_taken, 1u);
}

TEST(SarmSim, NotTakenBranchIsFree) {
  SInst b = mk(SOp::B, 0, 0, {}, Cond::EQ);
  b.target = 2;
  auto sim = sim_of({
      mk(SOp::Cmp, 0, 0, Operand2::immediate(1)),  // Z clear
      b,
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.stats().cycles, 3u);
  EXPECT_EQ(sim.stats().branches_not_taken, 1u);
}

TEST(SarmSim, LoadUseInterlock) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(static_cast<std::int32_t>(kDataBase))),
      mk(SOp::Ldr, 2, 1, Operand2::immediate(0)),
      mk(SOp::Add, 3, 2, Operand2::immediate(1)),  // uses r2: +1 stall
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.stats().load_use_stalls, 1u);
  EXPECT_EQ(sim.stats().cycles, 5u);

  auto sim2 = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(static_cast<std::int32_t>(kDataBase))),
      mk(SOp::Ldr, 2, 1, Operand2::immediate(0)),
      mk(SOp::Mov, 4, 0, Operand2::immediate(9)),  // filler
      mk(SOp::Add, 3, 2, Operand2::immediate(1)),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim2.run();
  EXPECT_EQ(sim2.stats().load_use_stalls, 0u);
}

TEST(SarmSim, SoftwareDivideCost) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(100)),
      mk(SOp::Mov, 2, 0, Operand2::immediate(7)),
      mk(SOp::SDiv, 3, 1, Operand2::reg(2)),
      mk(SOp::SRem, 4, 1, Operand2::reg(2)),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(3), 14u);
  EXPECT_EQ(sim.reg(4), 2u);
  EXPECT_EQ(sim.stats().cycles, 5u + 2u * 34u);
}

TEST(SarmSim, DivideCornerCasesMatchEpic) {
  auto sim = sim_of({
      mk(SOp::Mov, 1, 0, Operand2::immediate(42)),
      mk(SOp::SDiv, 2, 1, Operand2::immediate(0)),
      mk(SOp::SRem, 3, 1, Operand2::immediate(0)),
      mk(SOp::Halt, 0, 0, {}),
  });
  sim.run();
  EXPECT_EQ(sim.reg(2), 0u);
  EXPECT_EQ(sim.reg(3), 42u);
}

TEST(SarmSim, MemoryIsBigEndianShared) {
  SProgram p;
  p.data = {0xDE, 0xAD, 0xBE, 0xEF};
  p.code = {
      mk(SOp::Mov, 1, 0, Operand2::immediate(static_cast<std::int32_t>(kDataBase))),
      mk(SOp::Ldr, 2, 1, Operand2::immediate(0)),
      mk(SOp::Halt, 0, 0, {}),
  };
  SarmSimulator sim(std::move(p));
  sim.run();
  EXPECT_EQ(sim.reg(2), 0xDEADBEEFu);
}

TEST(SarmSim, RunawayGuard) {
  SInst loop = mk(SOp::B, 0, 0, {});
  loop.target = 0;
  SarmOptionsSim opts;
  opts.max_cycles = 1000;
  SProgram p;
  p.code = {loop};
  SarmSimulator sim(std::move(p), opts);
  EXPECT_THROW(sim.run(), SimError);
}

// ---- code generation ----

TEST(SarmCodegen, CompilesAndRuns) {
  auto sim = sarm::run_minic_on_sarm(
      "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i;"
      " out(s); return s; }");
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.reg(0), 55u);
}

TEST(SarmCodegen, FoldsShiftsIntoAddressing) {
  // Array indexing should use the barrel shifter, not separate LSLs.
  const SProgram p = sarm::compile_minic_to_sarm(
      "int t[8];\n"
      "int main() { int s = 0;"
      " for (int i = 0; i < 8; i++) s += t[i]; return s; }");
  int shifted_operands = 0;
  int standalone_shifts = 0;
  for (const SInst& inst : p.code) {
    if (!inst.op2.is_imm && inst.op2.shift != Shift::None) ++shifted_operands;
    if (inst.op == SOp::Lsl) ++standalone_shifts;
  }
  EXPECT_GE(shifted_operands, 1);
  // Only the stack-pointer setup shift should remain standalone.
  EXPECT_LE(standalone_shifts, 2);
}

TEST(SarmCodegen, UsesConditionalMovesForCmpValues) {
  const SProgram p = sarm::compile_minic_to_sarm(
      "int g[1] = {4};\n"
      "int main(){ int c = g[0] < 5; return c; }");
  bool cond_mov = false;
  for (const SInst& inst : p.code) {
    if (inst.op == SOp::Mov && inst.cond != Cond::AL) cond_mov = true;
  }
  EXPECT_TRUE(cond_mov);
}

TEST(SarmCodegen, RejectsTooManyArgs) {
  EXPECT_THROW(sarm::compile_minic_to_sarm(
                   "int g(int a,int b,int c,int d,int e) { return a; }\n"
                   "int main() { return g(1,2,3,4,5); }"),
               Error);
}

// ---- e2e equivalence against the interpreter ----

const char* kCorpus[] = {
    "int main() { int acc = 0;"
    " for (int i = 1; i <= 30; i++) acc += (i * i) % 7 - (acc >>> 2);"
    " out(acc); return acc; }",
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
    "int main() { out(fib(12)); return fib(9); }",
    "int v[8] = {5, 2, 8, 1, 9, 3, 7, 4};\n"
    "int main() {"
    "  for (int i = 0; i < 8; i++)"
    "    for (int j = 0; j + 1 < 8 - i; j++)"
    "      if (v[j] > v[j+1]) { int t = v[j]; v[j] = v[j+1]; v[j+1] = t; }"
    "  for (int i = 0; i < 8; i++) out(v[i]);"
    "  return v[7]; }",
    "int main() { int s = 1; int h = 0;"
    " for (int i = 0; i < 50; i++) {"
    "   s ^= s << 13; s ^= s >>> 17; s ^= s << 5;"
    "   h += (s >>> 24) % 10; }"
    " out(h); return h; }",
    "int main() { out(min(3, -4)); out(max(10, 2)); out(abs(-7));"
    " out(100 / 7); out(100 % 7); out((-100) / 7); return 0; }",
};

TEST(SarmE2e, MatchesInterpreterOnCorpus) {
  for (const char* src : kCorpus) {
    ir::Module m = minic::compile_to_ir(src);
    const ir::InterpResult gold = ir::Interpreter(m).run();
    auto sim = sarm::run_minic_on_sarm(src);
    EXPECT_EQ(sim.output(), gold.output) << src;
    EXPECT_EQ(sim.reg(0), gold.ret) << src;
  }
}

TEST(SarmE2e, UnoptimisedAlsoMatches) {
  sarm::SarmCompileOptions options;
  options.optimize = false;
  for (const char* src : kCorpus) {
    ir::Module m = minic::compile_to_ir(src);
    const ir::InterpResult gold = ir::Interpreter(m).run();
    auto sim = sarm::run_minic_on_sarm(src, options);
    EXPECT_EQ(sim.output(), gold.output) << src;
  }
}

TEST(SarmE2e, EpicAndSarmAgreeBitForBit) {
  for (const char* src : kCorpus) {
    auto epic = pipeline::run_once(src, ProcessorConfig{});
    auto sarm_sim = sarm::run_minic_on_sarm(src);
    EXPECT_EQ(epic.output(), sarm_sim.output()) << src;
  }
}

}  // namespace
}  // namespace cepic::sarm
