// Negative tests for ir::verify_module: each fixture builds a module
// that is broken in exactly one way and asserts the verifier names it.
#include <gtest/gtest.h>

#include "ir/ir.hpp"
#include "ir/verify.hpp"
#include "support/error.hpp"

namespace cepic::ir {
namespace {

/// int main() { ret 0 } — the smallest valid module; fixtures mutate it.
Module minimal() {
  Module m;
  Function fn;
  fn.name = "main";
  fn.returns_value = true;
  fn.next_vreg = 1;
  BasicBlock b;
  IrInst ret;
  ret.op = IrOp::Ret;
  ret.a = Value::i(0);
  b.insts.push_back(ret);
  fn.blocks.push_back(std::move(b));
  m.functions.push_back(std::move(fn));
  return m;
}

void expect_verify_error(const Module& m, std::string_view needle) {
  try {
    verify_module(m, /*require_main=*/true);
    FAIL() << "verify_module accepted a module that should fail: "
           << needle;
  } catch (const InternalError& e) {
    EXPECT_NE(std::string_view(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(Verify, MinimalModulePasses) {
  EXPECT_NO_THROW(verify_module(minimal(), /*require_main=*/true));
}

TEST(Verify, DstVregOutOfRange) {
  Module m = minimal();
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 7;  // next_vreg is 1
  mov.a = Value::i(0);
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), mov);
  expect_verify_error(m, "dst vreg %7 out of range");
}

TEST(Verify, OperandVregOutOfRange) {
  Module m = minimal();
  m.functions[0].blocks[0].insts.back().a = Value::r(9);
  expect_verify_error(m, "a vreg %9 out of range");
}

TEST(Verify, GuardVregOutOfRange) {
  Module m = minimal();
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 1;
  mov.a = Value::i(0);
  mov.guard = 5;
  m.functions[0].next_vreg = 2;
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), mov);
  expect_verify_error(m, "guard vreg out of range");
}

TEST(Verify, GuardedCallRejected) {
  Module m = minimal();
  m.functions[0].next_vreg = 2;
  IrInst guard_src;
  guard_src.op = IrOp::Mov;
  guard_src.dst = 1;
  guard_src.a = Value::i(1);
  IrInst call;
  call.op = IrOp::Call;
  call.callee = "main";
  call.guard = 1;
  auto& insts = m.functions[0].blocks[0].insts;
  insts.insert(insts.begin(), call);
  insts.insert(insts.begin(), guard_src);
  expect_verify_error(m, "calls cannot be guarded");
}

TEST(Verify, GuardedTerminatorRejected) {
  Module m = minimal();
  m.functions[0].next_vreg = 2;
  auto& insts = m.functions[0].blocks[0].insts;
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 1;
  mov.a = Value::i(1);
  insts.insert(insts.begin(), mov);
  insts.back().guard = 1;
  expect_verify_error(m, "terminators cannot be guarded");
}

TEST(Verify, GuardNegateWithoutGuardRejected) {
  Module m = minimal();
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 0;  // irrelevant; fails earlier? dst must be valid
  mov.dst = 1;
  mov.a = Value::i(0);
  mov.guard_negate = true;
  Module& mm = m;
  mm.functions[0].next_vreg = 2;
  mm.functions[0].blocks[0].insts.insert(
      mm.functions[0].blocks[0].insts.begin(), mov);
  expect_verify_error(mm, "guard_negate set on an unguarded instruction");
}

TEST(Verify, StrayDstOnStoreRejected) {
  Module m = minimal();
  IrInst st;
  st.op = IrOp::StoreW;
  st.a = Value::i(64);
  st.b = Value::i(0);
  st.c = Value::i(1);
  st.dst = 1;  // stores define nothing
  m.functions[0].next_vreg = 2;
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), st);
  expect_verify_error(m, "dst set on an op that defines nothing");
}

TEST(Verify, StrayBranchTargetRejected) {
  Module m = minimal();
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 1;
  mov.a = Value::i(0);
  mov.block_then = 0;  // stale branch field on a non-branch
  m.functions[0].next_vreg = 2;
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), mov);
  expect_verify_error(m, "branch target on a non-branch instruction");
}

TEST(Verify, BlockElseOnUnconditionalBrRejected) {
  Module m = minimal();
  BasicBlock b1;
  IrInst ret;
  ret.op = IrOp::Ret;
  ret.a = Value::i(0);
  b1.insts.push_back(ret);
  IrInst br;
  br.op = IrOp::Br;
  br.block_then = 1;
  br.block_else = 1;  // stray on Br
  m.functions[0].blocks[0].insts.back() = br;
  m.functions[0].blocks.push_back(std::move(b1));
  expect_verify_error(m, "block_else set on an unconditional branch");
}

TEST(Verify, StrayCalleeRejected) {
  Module m = minimal();
  IrInst mov;
  mov.op = IrOp::Mov;
  mov.dst = 1;
  mov.a = Value::i(0);
  mov.callee = "ghost";
  m.functions[0].next_vreg = 2;
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), mov);
  expect_verify_error(m, "callee/args on a non-call instruction");
}

TEST(Verify, StrayCOperandRejected) {
  Module m = minimal();
  IrInst add;
  add.op = IrOp::Add;
  add.dst = 1;
  add.a = Value::i(1);
  add.b = Value::i(2);
  add.c = Value::i(3);  // c belongs to stores only
  m.functions[0].next_vreg = 2;
  m.functions[0].blocks[0].insts.insert(
      m.functions[0].blocks[0].insts.begin(), add);
  expect_verify_error(m, "c operand on a non-store instruction");
}

TEST(Verify, BranchTargetOutOfRange) {
  Module m = minimal();
  IrInst br;
  br.op = IrOp::Br;
  br.block_then = 3;
  m.functions[0].blocks[0].insts.back() = br;
  expect_verify_error(m, "branch target .b3 out of range");
}

TEST(Verify, MissingTerminator) {
  Module m = minimal();
  m.functions[0].blocks[0].insts.pop_back();
  expect_verify_error(m, "missing terminator");
}

TEST(Verify, TerminatorMidBlock) {
  Module m = minimal();
  IrInst ret;
  ret.op = IrOp::Ret;
  ret.a = Value::i(1);
  auto& insts = m.functions[0].blocks[0].insts;
  insts.insert(insts.begin(), ret);
  expect_verify_error(m, "terminator in the middle of a block");
}

TEST(Verify, BadParamVreg) {
  Module m = minimal();
  m.functions[0].params.push_back(4);  // >= next_vreg
  expect_verify_error(m, "bad param vreg");
}

TEST(Verify, UnknownCallee) {
  Module m = minimal();
  IrInst call;
  call.op = IrOp::Call;
  call.callee = "nonexistent";
  auto& insts = m.functions[0].blocks[0].insts;
  insts.insert(insts.begin(), call);
  expect_verify_error(m, "unknown callee @nonexistent");
}

}  // namespace
}  // namespace cepic::ir
