#include <gtest/gtest.h>

#include "mdes/mdes.hpp"

namespace cepic {
namespace {

TEST(Mdes, UnitsFromConfig) {
  ProcessorConfig cfg;
  cfg.num_alus = 3;
  const Mdes m(cfg);
  EXPECT_EQ(m.units(FuClass::Alu), 3u);
  EXPECT_EQ(m.units(FuClass::Cmpu), 1u);
  EXPECT_EQ(m.units(FuClass::Lsu), 1u);
  EXPECT_EQ(m.units(FuClass::Bru), 1u);
  EXPECT_EQ(m.units(FuClass::None), 0u);
}

TEST(Mdes, IssueAndPortsAndForwarding) {
  ProcessorConfig cfg;
  cfg.issue_width = 2;
  cfg.reg_port_budget = 6;
  cfg.forwarding = false;
  const Mdes m(cfg);
  EXPECT_EQ(m.issue_width(), 2u);
  EXPECT_EQ(m.reg_port_budget(), 6u);
  EXPECT_FALSE(m.forwarding());
}

TEST(Mdes, LoadLatencyFromConfig) {
  ProcessorConfig cfg;
  cfg.load_latency = 3;
  const Mdes m(cfg);
  EXPECT_EQ(m.latency(Op::LDW), 3u);
  EXPECT_EQ(m.latency(Op::LDB), 3u);
  EXPECT_EQ(m.latency(Op::LDWS), 3u);
  EXPECT_EQ(m.latency(Op::ADD), 1u);
  EXPECT_EQ(m.latency(Op::CMPP_EQ), 1u);
}

TEST(Mdes, FeatureTrimsDisableOps) {
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  cfg.alu.has_minmax = false;
  const Mdes m(cfg);
  EXPECT_FALSE(m.op_supported(Op::DIV));
  EXPECT_FALSE(m.op_supported(Op::REM));
  EXPECT_FALSE(m.op_supported(Op::MIN));
  EXPECT_FALSE(m.op_supported(Op::ABS));
  EXPECT_TRUE(m.op_supported(Op::MUL));
  EXPECT_TRUE(m.op_supported(Op::ADD));
}

TEST(Mdes, CustomOpsFollowConfig) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr", "madd16"};
  const CustomOpTable table = CustomOpTable::for_names(cfg.custom_ops);
  const Mdes m(cfg, &table);
  EXPECT_TRUE(m.op_supported(Op::CUSTOM0));
  EXPECT_TRUE(m.op_supported(Op::CUSTOM1));
  EXPECT_FALSE(m.op_supported(Op::CUSTOM2));
}

TEST(Mdes, TextRoundtripPreservesModel) {
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  cfg.issue_width = 3;
  cfg.load_latency = 4;
  cfg.alu.has_div = false;
  const Mdes m(cfg);
  const Mdes back = Mdes::from_text(m.to_text());

  EXPECT_EQ(back.units(FuClass::Alu), 2u);
  EXPECT_EQ(back.issue_width(), 3u);
  EXPECT_EQ(back.reg_port_budget(), m.reg_port_budget());
  EXPECT_EQ(back.forwarding(), m.forwarding());
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    if (op == Op::NOP) continue;
    EXPECT_EQ(back.op_supported(op), m.op_supported(op)) << op_info(op).name;
    if (m.op_supported(op)) {
      EXPECT_EQ(back.latency(op), m.latency(op)) << op_info(op).name;
    }
  }
}

TEST(Mdes, FromTextRejectsMalformed) {
  EXPECT_THROW(Mdes::from_text("SECTION Bogus {\n}\n"), ConfigError);
  EXPECT_THROW(Mdes::from_text("SECTION Resource {\n  ALU count 4;\n}\n"),
               ConfigError);
  EXPECT_THROW(Mdes::from_text("add(unit ALU; latency 1);\n"), ConfigError);
  EXPECT_THROW(
      Mdes::from_text("SECTION Operation {\n  frob(unit ALU; latency 1);\n}\n"),
      ConfigError);
}

TEST(Mdes, ToTextMentionsResourcesAndOps) {
  const Mdes m{ProcessorConfig{}};
  const std::string text = m.to_text();
  EXPECT_NE(text.find("ALU(count 4)"), std::string::npos);
  EXPECT_NE(text.find("issue(width 4)"), std::string::npos);
  EXPECT_NE(text.find("add(unit ALU"), std::string::npos);
  EXPECT_NE(text.find("ldw(unit LSU; latency 2)"), std::string::npos);
}

}  // namespace
}  // namespace cepic
