// The config-aware machine-code verifier (src/mcheck): a seeded
// violation corpus with one hand-written fixture per rule (each
// asserting the exact rule id), clean passes over every paper workload
// across the differential configuration grid, the simulator
// cross-checks (mcheck's static stall findings predict the dynamic
// stall counters), the deliberately-broken-scheduler experiment (a
// port-budget violation the simulator merely absorbs but mcheck
// catches), and the pipeline::Service verify stage with its cached
// lint reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "asmtool/assembler.hpp"
#include "core/custom.hpp"
#include "core/program.hpp"
#include "mcheck/mcheck.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace cepic::mcheck {
namespace {

Program assemble(const char* text, const ProcessorConfig& cfg = {}) {
  return asmtool::assemble(text, cfg);
}

/// A syntactically minimal runnable skeleton the fixtures mutate: the
/// assembler enforces part of the contract at parse time, so fixtures
/// for rules it already rejects are built by patching an assembled
/// Program — exactly the situation mcheck exists for (hand-assembled
/// or corrupted binaries, and toolchain bugs downstream of the
/// assembler).
Program skeleton(const ProcessorConfig& cfg = {}) {
  return assemble(
      ".text\n.entry main\nmain:\nmov r1, #1 ;;\nhalt ;;\n", cfg);
}

TEST(Rules, StableIds) {
  EXPECT_EQ(rule_id(Rule::Structure), "mcheck.structure");
  EXPECT_EQ(rule_id(Rule::FieldWidth), "mcheck.field-width");
  EXPECT_EQ(rule_id(Rule::RegBounds), "mcheck.reg-bounds");
  EXPECT_EQ(rule_id(Rule::FuMissing), "mcheck.fu-missing");
  EXPECT_EQ(rule_id(Rule::FuOversubscribed), "mcheck.fu-oversubscribed");
  EXPECT_EQ(rule_id(Rule::PortBudget), "mcheck.port-budget");
  EXPECT_EQ(rule_id(Rule::Latency), "mcheck.latency");
  EXPECT_EQ(rule_id(Rule::MultiOpWaw), "mcheck.multiop-waw");
  EXPECT_EQ(rule_id(Rule::BranchTarget), "mcheck.branch-target");
  EXPECT_EQ(rule_id(Rule::BtrDiscipline), "mcheck.btr-discipline");
}

// ------------------------------------------------ the violation corpus

TEST(Fixtures, CleanSkeletonIsClean) {
  const Report rep = check_program(skeleton());
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.diags.empty()) << rep.to_text();
}

TEST(Fixtures, PortBudgetOverflow) {
  // Four 3-port ALU ops in one MultiOp need 12 port operations against
  // the default budget of 8 — legal (the controller stalls issue,
  // paper §3.2) but a schedule-quality defect, hence a warning.
  // (The two warm-up MultiOps matter for the dynamic cross-check: at
  // cycle 0 every register's ready-cycle equals the issue cycle, so the
  // simulator's forwarding satisfies all reads for free.)
  const Program p = assemble(
      ".text\n.entry main\nmain:\n"
      "mov r20, #0 ;;\n"
      "mov r21, #0 ;;\n"
      "add r1, r2, r3 ; add r4, r5, r6 ; add r7, r8, r9 ; "
      "add r10, r11, r12 ;;\n"
      "halt ;;\n");
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::PortBudget)) << rep.to_text();
  EXPECT_EQ(rep.count(Severity::Error), 0u) << rep.to_text();
  EXPECT_GE(rep.warning_count(), 1u);
  EXPECT_TRUE(rep.clean());  // warning only...
  Report werror = check_program(p, CheckOptions{.werror = true});
  EXPECT_FALSE(werror.clean());  // ...until -Werror promotes it

  // Cross-check: the simulator pays for exactly this finding.
  EpicSimulator sim(p);
  sim.run();
  EXPECT_GT(sim.stats().stall_reg_ports, 0u);
}

TEST(Fixtures, FieldWidthLiteralTooWide) {
  // 40000 exceeds the signed 16-bit SRC field of the default format
  // (paper §3.1). The assembler rejects the literal at parse time, so
  // patch an assembled program — the binary-level check must catch it.
  Program p = skeleton();
  p.code[0].src1 = Operand::imm(40000);
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::FieldWidth)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, RegBoundsExceedsFile) {
  ProcessorConfig cfg;
  cfg.num_gprs = 32;
  Program p = skeleton(cfg);
  p.code[0].src1 = Operand::r(40);  // r40 on a 32-GPR machine
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::RegBounds)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, FuMissingDivOnDivlessConfig) {
  // The paper's primary customisation example: trim DIV/REM from the
  // ALUs. A program carrying a DIV is a binary for the wrong machine.
  ProcessorConfig cfg;
  cfg.alu.has_div = false;
  Program p = skeleton(cfg);
  p.code[0] = Instruction::make(Op::DIV, 4, Operand::r(2), Operand::r(3));
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::FuMissing)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, FuOversubscribedTwoLoadsOneLsu) {
  // The configuration has one LSU; two loads in one MultiOp cannot
  // issue. The assembler enforces this for text input, but nothing
  // else did for directly-constructed binaries (the simulator executes
  // them happily) — the real verification gap mcheck closes.
  Program p = skeleton();
  p.code[0] = Instruction::make(Op::LDW, 4, Operand::r(1), Operand::imm(0));
  p.code[1] = Instruction::make(Op::LDW, 5, Operand::r(1), Operand::imm(4));
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::FuOversubscribed)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, BranchTargetPastEnd) {
  Program p = skeleton();
  p.code[0] = Instruction::make(Op::PBR, 0, Operand::imm(99));
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::BranchTarget)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, BtrDisciplineBranchWithoutPrepare) {
  // `bru b0` with no PBR anywhere preparing b0: the branch consumes an
  // undefined branch-target register (paper §3.2's prepare-to-branch
  // discipline).
  const Program p = assemble(
      ".text\n.entry main\nmain:\nbru b0 ;;\nhalt ;;\n");
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::BtrDiscipline)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, LatencyUseBeforeReady) {
  // ldw takes load_latency cycles; the very next MultiOp consumes the
  // value, so the scoreboard must stall — statically visible because
  // the scheduler emits latency gaps as explicit empty MultiOps.
  ProcessorConfig cfg;
  cfg.load_latency = 3;
  const Program p = assemble(
      ".text\n.entry main\nmain:\n"
      "mov r1, #64 ;;\n"
      ";;\n"  // gap so the mov->ldw pair itself is clean
      "ldw r5, r1, #0 ;;\n"
      "add r6, r5, r5 ;;\n"
      "halt ;;\n",
      cfg);
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::Latency)) << rep.to_text();
  EXPECT_EQ(rep.count(Severity::Error), 0u) << rep.to_text();

  // Cross-check: the simulator's scoreboard pays for the finding (the
  // program still computes the right value — interlocks, paper §2).
  EpicSimulator sim(p);
  sim.run();
  EXPECT_GT(sim.stats().stall_scoreboard, 0u);
  EXPECT_EQ(sim.gpr(6), 0u);  // 2 * mem[64] with zeroed memory
}

TEST(Fixtures, LatencySameBundleStaleRead) {
  // Slot 1 reads r1 which slot 0 writes: MultiOp semantics read the
  // pre-MultiOp value (legal — the register-swap idiom), but flagged
  // because scheduled code never intends it.
  const Program p = assemble(
      ".text\n.entry main\nmain:\n"
      "mov r1, #7 ; add r2, r1, #1 ;;\n"
      "halt ;;\n");
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::Latency)) << rep.to_text();
  EXPECT_EQ(rep.count(Severity::Error), 0u) << rep.to_text();
}

TEST(Fixtures, MultiOpWawDoubleWrite) {
  const Program p = assemble(
      ".text\n.entry main\nmain:\n"
      "mov r1, #1 ; mov r1, #2 ;;\n"
      "halt ;;\n");
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::MultiOpWaw)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, StructureRaggedCode) {
  Program p = skeleton();
  p.code.push_back(Instruction::halt());  // no longer whole MultiOps
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::Structure)) << rep.to_text();
  EXPECT_GE(rep.error_count(), 1u);
}

TEST(Fixtures, StructureEntryPastEnd) {
  Program p = skeleton();
  p.entry_bundle = 100;
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::Structure)) << rep.to_text();
}

// ---------------------------------------------------- report machinery

TEST(Report, RuleMaskDisablesFindings) {
  Program p = skeleton();
  p.code[0].src1 = Operand::r(200);
  EXPECT_TRUE(check_program(p).has_rule(Rule::RegBounds));
  const CheckOptions only_width = CheckOptions::only({Rule::FieldWidth});
  EXPECT_TRUE(check_program(p, only_width).diags.empty());
}

TEST(Report, DiagnosticCarriesLocationAndLabel) {
  ProcessorConfig cfg;
  cfg.num_gprs = 32;
  Program p = skeleton(cfg);
  p.code[0].src1 = Operand::r(40);
  const Report rep = check_program(p);
  ASSERT_FALSE(rep.diags.empty());
  const Diagnostic& d = rep.diags.front();
  EXPECT_EQ(d.bundle, 0u);
  EXPECT_EQ(d.slot, 0);
  EXPECT_EQ(d.label, "main");
  EXPECT_NE(d.to_string().find("[mcheck.reg-bounds]"), std::string::npos);
}

TEST(Report, JsonShape) {
  Program p = skeleton();
  p.code[0].src1 = Operand::imm(1 << 20);
  const std::string json = check_program(p).to_json();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"mcheck.field-width\""), std::string::npos)
      << json;
}

TEST(Report, InvalidConfigIsAStructureDiagnosticNotAThrow) {
  Program p = skeleton();
  p.config.issue_width = 0;
  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::Structure)) << rep.to_text();
}

// ----------------------------------- the architectural contract holds

/// The differential grid every generated program is checked across.
std::vector<ProcessorConfig> differential_grid() {
  std::vector<ProcessorConfig> grid;
  for (unsigned alus = 1; alus <= 4; ++alus) {
    for (int fwd = 0; fwd <= 1; ++fwd) {
      ProcessorConfig cfg;
      cfg.num_alus = alus;
      cfg.forwarding = fwd != 0;
      grid.push_back(cfg);
    }
  }
  return grid;
}

TEST(SchedulerContract, AllWorkloadsLintCleanAcrossTheGrid) {
  pipeline::Service service;  // in-memory store: each workload IR once
  for (const workloads::Workload& w : workloads::all_workloads(8, 2, 8, 6)) {
    for (const ProcessorConfig& cfg : differential_grid()) {
      const Program p = service.compile_program(w.minic_source, cfg);
      const Report rep =
          check_program(p, CheckOptions{.werror = true});
      EXPECT_TRUE(rep.clean()) << w.name << " on " << cfg.summary() << "\n"
                               << rep.to_text();
    }
  }
}

TEST(SchedulerContract, SchedulerOutputHasNoStallsAtRuntime) {
  // The static claim, validated dynamically: scheduled code never
  // scoreboard- or port-stalls (gap cycles are explicit NOP MultiOps).
  pipeline::Options opts;
  opts.sim.mem_size = 1u << 20;
  pipeline::Service service(opts);
  const workloads::Workload w = workloads::make_dct(8);
  const EpicSimulator sim = service.run(w.minic_source, ProcessorConfig{});
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
  EXPECT_EQ(sim.output(), w.expected_output);
}

TEST(SchedulerContract, BrokenBudgetIsCaughtByMcheckNotTheSimulator) {
  // Break the scheduler's port-budget accounting through the test-only
  // hook (it believes 32 ports exist; the machine has 8). The simulator
  // cannot catch this — the interlocked hardware just stalls and still
  // computes the right answer — but mcheck flags the overscheduled
  // MultiOps statically.
  const workloads::Workload w = workloads::make_sha(8);
  ProcessorConfig cfg;  // default: 4 ALUs, budget 8, forwarding

  pipeline::Options broken;
  broken.codegen.backend.test_override_port_budget = 32;
  broken.sim.mem_size = 1u << 20;
  pipeline::Service broken_service(broken);
  const Program p = broken_service.compile_program(w.minic_source, cfg);

  const Report rep = check_program(p);
  ASSERT_TRUE(rep.has_rule(Rule::PortBudget)) << rep.to_text();
  EXPECT_FALSE(check_program(p, CheckOptions{.werror = true}).clean());

  // The simulator accepts and correctly executes the broken schedule.
  const EpicSimulator sim = broken_service.run(w.minic_source, cfg);
  EXPECT_EQ(sim.output(), w.expected_output);
  EXPECT_GT(sim.stats().stall_reg_ports, 0u);
}

// ------------------------------------------- pipeline verify stage

const char* kVerifyProg =
    "int main() {"
    "  int s = 0;"
    "  for (int i = 0; i < 16; i++) s += i * i;"
    "  out(s); return s & 0xFF; }";

TEST(PipelineVerify, CleanProgramPassesAndReportIsCached) {
  pipeline::Options opts;
  opts.verify = true;
  opts.verify_werror = true;
  pipeline::Service service(opts);
  (void)service.compile_program(kVerifyProg, ProcessorConfig{});
  EXPECT_EQ(service.stats().lint_runs, 1u);
  // Second compile: program AND lint report served from the store.
  (void)service.compile_program(kVerifyProg, ProcessorConfig{});
  EXPECT_EQ(service.stats().lint_runs, 1u);
  EXPECT_GE(service.stats().store.lint.hits, 1u);
}

TEST(PipelineVerify, RejectsBrokenScheduleUnderWerror) {
  // SHA has enough ILP that the broken budget actually changes the
  // schedule (kVerifyProg's dependence chains never fill a MultiOp).
  const workloads::Workload w = workloads::make_sha(8);
  pipeline::Options opts;
  opts.verify = true;
  opts.verify_werror = true;
  opts.codegen.backend.test_override_port_budget = 32;
  pipeline::Service service(opts);
  try {
    (void)service.compile_program(w.minic_source, ProcessorConfig{});
    FAIL() << "verify stage accepted an over-budget schedule";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("mcheck"), std::string::npos)
        << e.what();
  }
}

TEST(PipelineVerify, BatchItemsCarryTheVerifierError) {
  const workloads::Workload w = workloads::make_sha(8);
  pipeline::Options opts;
  opts.verify = true;
  opts.verify_werror = true;
  opts.codegen.backend.test_override_port_budget = 32;
  opts.jobs = 2;
  pipeline::Service service(opts);
  const std::vector<pipeline::RunOutcome> outcomes =
      service.run_batch({w.minic_source}, {ProcessorConfig{}});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("mcheck"), std::string::npos)
      << outcomes[0].error;
}

TEST(PipelineVerify, OffByDefaultAndWarningsDontReject) {
  // verify off: the broken schedule compiles fine (pre-PR behaviour).
  pipeline::Options off;
  off.codegen.backend.test_override_port_budget = 32;
  pipeline::Service off_service(off);
  EXPECT_NO_THROW(
      (void)off_service.compile_program(kVerifyProg, ProcessorConfig{}));
  EXPECT_EQ(off_service.stats().lint_runs, 0u);
  // verify without werror: port-budget findings are warnings, pass.
  pipeline::Options warn = off;
  warn.verify = true;
  pipeline::Service warn_service(warn);
  EXPECT_NO_THROW(
      (void)warn_service.compile_program(kVerifyProg, ProcessorConfig{}));
  EXPECT_EQ(warn_service.stats().lint_runs, 1u);
}

}  // namespace
}  // namespace cepic::mcheck
