// The parallel design-space exploration engine (src/explore): thread
// pool, grid grammar, validity filtering, thread-count invariance
// (jobs=1 and jobs=8 must produce byte-identical results), result-cache
// behaviour (in-memory and on-disk), Pareto-set extraction on a
// hand-built fixture, and CSV/JSON golden output.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>

#include "pipeline/pipeline.hpp"
#include "explore/cache.hpp"
#include "explore/explore.hpp"
#include "explore/sweep.hpp"
#include "explore/thread_pool.hpp"
#include "support/text.hpp"

namespace cepic::explore {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedTaskAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, SizeOneRunsInlineOnTheCallingThread) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.submit([&seen] { seen = std::this_thread::get_id(); });
  pool.wait();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ZeroClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

// --------------------------------------------------------- grid grammar

TEST(SweepSpec, GridExpandsRowMajorLastDimensionFastest) {
  const SweepSpec spec = SweepSpec::from_grid("alus=1..2,ports=4,8");
  ASSERT_EQ(spec.size(), 4u);
  EXPECT_EQ(spec.points[0].num_alus, 1u);
  EXPECT_EQ(spec.points[0].reg_port_budget, 4u);
  EXPECT_EQ(spec.points[1].num_alus, 1u);
  EXPECT_EQ(spec.points[1].reg_port_budget, 8u);
  EXPECT_EQ(spec.points[2].num_alus, 2u);
  EXPECT_EQ(spec.points[2].reg_port_budget, 4u);
  EXPECT_EQ(spec.points[3].num_alus, 2u);
  EXPECT_EQ(spec.points[3].reg_port_budget, 8u);
}

TEST(SweepSpec, ContinuationTokensExtendThePreviousDimension) {
  const SweepSpec spec = SweepSpec::from_grid("ports=4,8,16,32");
  ASSERT_EQ(spec.size(), 4u);
  EXPECT_EQ(spec.points[3].reg_port_budget, 32u);
}

TEST(SweepSpec, AcceptsAliasesAndConfigFileNames) {
  const SweepSpec a = SweepSpec::from_grid("width=2");
  const SweepSpec b = SweepSpec::from_grid("issue=2");
  const SweepSpec c = SweepSpec::from_grid("issue_width=2");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.points[0].issue_width, 2u);
  EXPECT_EQ(b.points[0], a.points[0]);
  EXPECT_EQ(c.points[0], a.points[0]);
}

TEST(SweepSpec, BooleanDimension) {
  const SweepSpec spec = SweepSpec::from_grid("forwarding=0,1");
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_FALSE(spec.points[0].forwarding);
  EXPECT_TRUE(spec.points[1].forwarding);
  EXPECT_THROW(SweepSpec::from_grid("forwarding=2"), ConfigError);
}

TEST(SweepSpec, BaseConfigCarriesUnsweptParameters) {
  ProcessorConfig base;
  base.num_gprs = 32;
  const SweepSpec spec = SweepSpec::from_grid("alus=1..2", base);
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_EQ(spec.points[0].num_gprs, 32u);
  EXPECT_EQ(spec.points[1].num_gprs, 32u);
}

TEST(SweepSpec, RejectsMalformedGrammar) {
  EXPECT_THROW(SweepSpec::from_grid(""), ConfigError);
  EXPECT_THROW(SweepSpec::from_grid("frobs=1..4"), ConfigError);
  EXPECT_THROW(SweepSpec::from_grid("alus=x"), ConfigError);
  EXPECT_THROW(SweepSpec::from_grid("alus=4..1"), ConfigError);
  EXPECT_THROW(SweepSpec::from_grid("4,8"), ConfigError);
  EXPECT_THROW(SweepSpec::from_grid("alus=1,,2"), ConfigError);
}

TEST(SweepSpec, FilterInvalidDropsOutOfRangePoints) {
  SweepSpec spec = SweepSpec::from_grid("stages=1..5");
  ASSERT_EQ(spec.size(), 5u);
  EXPECT_EQ(spec.filter_invalid(), 2u);  // stages 1 and 5 are out of range
  ASSERT_EQ(spec.size(), 3u);
  EXPECT_EQ(spec.points.front().pipeline_stages, 2u);
  EXPECT_EQ(spec.points.back().pipeline_stages, 4u);
}

// --------------------------------------------------------------- engine

const char* kProg =
    "int main() {"
    "  int acc = 0;"
    "  for (int i = 1; i <= 30; i++) acc += i * i - (i << 1);"
    "  out(acc); return acc & 0xFF; }";

TEST(Explore, JobsCountDoesNotChangeAnyByteOfTheResult) {
  const SweepSpec spec = SweepSpec::from_grid("alus=1..2,width=1..2");
  ExploreOptions serial;
  serial.jobs = 1;
  ExploreOptions wide;
  wide.jobs = 8;
  const SweepResult a = run_sweep(kProg, spec, serial);
  const SweepResult b = run_sweep(kProg, spec, wide);
  ASSERT_EQ(a.points.size(), 4u);
  ASSERT_EQ(b.points.size(), 4u);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_TRUE(a.points[i].ok);
    EXPECT_EQ(a.points[i].cycles, b.points[i].cycles) << i;
    EXPECT_EQ(a.points[i].output_hash, b.points[i].output_hash) << i;
  }
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Explore, ResultsMatchADirectDriverRun) {
  SweepSpec spec;
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  spec.add(cfg);
  const SweepResult r = run_sweep(kProg, spec, {});
  ASSERT_EQ(r.points.size(), 1u);
  ASSERT_TRUE(r.points[0].ok);

  EpicSimulator sim = pipeline::run_once(kProg, cfg);
  EXPECT_EQ(r.points[0].cycles, sim.stats().cycles);
  EXPECT_EQ(r.points[0].output_words, sim.output().size());
  EXPECT_EQ(r.points[0].output_hash, hash_output(sim.output()));
  EXPECT_EQ(r.points[0].ret, sim.gpr(3));
}

TEST(Explore, InvalidPointIsReportedNotThrown) {
  SweepSpec spec;
  ProcessorConfig bad;
  bad.num_alus = 0;  // validate() rejects
  spec.add(bad);
  spec.add(ProcessorConfig{});
  const SweepResult r = run_sweep(kProg, spec, {});
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_FALSE(r.points[0].ok);
  EXPECT_NE(r.points[0].error.find("num_alus"), std::string::npos);
  EXPECT_TRUE(r.points[1].ok);
  // Failed points still occupy their CSV row, with ok=0.
  EXPECT_NE(r.to_csv().find("\n0,"), std::string::npos);
}

TEST(Explore, OnDiskCacheMakesRepeatInvocationsFree) {
  const std::string cache_file =
      testing::TempDir() + "/explore_cache_test.sweep-cache";
  std::remove(cache_file.c_str());

  const SweepSpec spec = SweepSpec::from_grid("alus=1..2");
  ExploreOptions options;
  options.cache_file = cache_file;

  const SweepResult cold = run_sweep(kProg, spec, options);
  EXPECT_EQ(cold.cache_hits, 0u);
  const SweepResult warm = run_sweep(kProg, spec, options);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_TRUE(warm.points[0].from_cache);
  // Cached and fresh results are byte-identical.
  EXPECT_EQ(cold.to_csv(), warm.to_csv());
  EXPECT_EQ(cold.to_json(), warm.to_json());

  // A different source must not hit the cache of the first program.
  const SweepResult other =
      run_sweep("int main() { out(1); return 1; }", spec, options);
  EXPECT_EQ(other.cache_hits, 0u);
  std::remove(cache_file.c_str());
}

TEST(Explore, InMemoryCacheDeduplicatesRepeatedPointsWithinOneSweep) {
  SweepSpec spec;
  spec.add(ProcessorConfig{});
  spec.add(ProcessorConfig{});  // identical point twice
  const SweepResult r = run_sweep(kProg, spec, {});
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_TRUE(r.points[0].ok);
  EXPECT_TRUE(r.points[1].ok);
  EXPECT_EQ(r.points[0].cycles, r.points[1].cycles);
}

TEST(ResultCache, FileRoundTripIgnoresCorruptLines) {
  const std::string path = testing::TempDir() + "/cache_roundtrip.txt";
  ResultCache cache;
  const ResultCache::Key key{0xdeadbeefull, 0x1234ull};
  CacheEntry e;
  e.cycles = 12345;
  e.ops_committed = 678;
  e.output_words = 3;
  e.output_hash = 0xabcdef0123456789ull;
  e.ret = 42;
  cache.insert(key, e);
  cache.save_file(path);

  {  // append garbage that load must skip
    std::ofstream out(path, std::ios::app);
    out << "not a cache line\n"
        << "v1 zz zz 1 2 3 4 5\n"
        << "v1 1 2 3\n"
        << "v2 1 2 3 4 5 6 7\n";
  }
  ResultCache loaded;
  EXPECT_EQ(loaded.load_file(path), 1u);
  CacheEntry got;
  ASSERT_TRUE(loaded.lookup(key, got));
  EXPECT_EQ(got, e);
  EXPECT_EQ(loaded.hits(), 1u);
  CacheEntry miss;
  EXPECT_FALSE(loaded.lookup({1, 2}, miss));
  EXPECT_EQ(loaded.misses(), 1u);
  std::remove(path.c_str());
}

TEST(ResultCache, MissingFileLoadsNothing) {
  ResultCache cache;
  EXPECT_EQ(cache.load_file(testing::TempDir() + "/does_not_exist.cache"), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// --------------------------------------------------------------- pareto

PointResult make_point(std::uint64_t cycles, double slices, double power,
                       bool ok = true) {
  PointResult p;
  p.ok = ok;
  p.cycles = cycles;
  p.slices = slices;
  p.power_mw = power;
  return p;
}

TEST(SweepResultPareto, HandBuiltFrontier) {
  SweepResult r;
  r.points.push_back(make_point(100, 50, 10));   // 0: on frontier
  r.points.push_back(make_point(90, 60, 10));    // 1: fastest -> frontier
  r.points.push_back(make_point(100, 40, 12));   // 2: smallest -> frontier
  r.points.push_back(make_point(120, 70, 20));   // 3: dominated by 0
  r.points.push_back(make_point(100, 50, 10));   // 4: tie with 0 -> kept
  r.points.push_back(make_point(80, 30, 5, /*ok=*/false));  // 5: failed
  EXPECT_EQ(r.pareto_indices(), (std::vector<std::size_t>{0, 1, 2, 4}));
  EXPECT_TRUE(r.is_pareto(0));
  EXPECT_FALSE(r.is_pareto(3));
  EXPECT_FALSE(r.is_pareto(5));
}

TEST(SweepResultPareto, SingleSurvivorDominatesAll) {
  SweepResult r;
  r.points.push_back(make_point(10, 10, 10));
  r.points.push_back(make_point(10, 10, 11));
  r.points.push_back(make_point(11, 10, 10));
  EXPECT_EQ(r.pareto_indices(), (std::vector<std::size_t>{0}));
}

// ----------------------------------------------------------- csv / json

TEST(SweepResult, CsvGoldenOutput) {
  SweepResult r;
  r.source_hash = 0x1234;
  PointResult p = make_point(100, 11945, 716.6);
  p.config = ProcessorConfig{};
  p.config_hash = 0xfeed;
  p.ops_committed = 250;
  p.ilp = 2.5;
  p.block_rams = 3;
  p.block_mults = 6;
  p.fmax_mhz = 41.8;
  p.time_ms = 2.392;
  p.output_words = 1;
  p.output_hash = 0xabc;
  p.ret = 7;
  r.points.push_back(p);
  PointResult bad;
  bad.config = ProcessorConfig{};
  bad.config.num_alus = 2;
  bad.error = "boom";
  r.points.push_back(bad);

  EXPECT_EQ(r.to_csv(),
            "point,config,alus,issue,ports,stages,ok,cycles,ilp,slices,"
            "brams,mults,fmax_mhz,time_ms,power_mw,out_words,out_hash,ret,"
            "pareto\n"
            "0,4alu/4iss/8port/2stg,4,4,8,2,1,100,2.500,11945,3,6,41.8,"
            "2.392,716.6,1,abc,7,1\n"
            "1,2alu/4iss/8port/2stg,2,4,8,2,0,0,0.000,0,0,0,0.0,0.000,0.0,"
            "0,0,0,0\n");
}

TEST(SweepResult, JsonEscapesErrorsAndMarksPareto) {
  SweepResult r;
  PointResult ok = make_point(10, 20, 30);
  ok.config = ProcessorConfig{};
  r.points.push_back(ok);
  PointResult bad;
  bad.config = ProcessorConfig{};
  bad.error = "line 1: unexpected `\"`\nmore";
  r.points.push_back(bad);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"pareto\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("unexpected `\\\"`\\nmore"), std::string::npos);
}

}  // namespace
}  // namespace cepic::explore
