// Semantic-analysis tests (errors) plus structural checks on generated IR.
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "ir/verify.hpp"
#include "core/program.hpp"
#include "support/error.hpp"

namespace cepic::minic {
namespace {

TEST(IrGen, SimpleFunctionShape) {
  const ir::Module m = compile_to_ir("int f(int a) { return a + 1; }");
  const ir::Function* f = m.find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->returns_value);
  EXPECT_EQ(f->params.size(), 1u);
  ASSERT_FALSE(f->blocks.empty());
  EXPECT_EQ(f->blocks[0].terminator().op, ir::IrOp::Ret);
}

TEST(IrGen, GlobalLayoutAndInitialisers) {
  const ir::Module m = compile_to_ir(
      "int a = 7;\n"
      "int t[3] = {1, -2, 0x10};\n"
      "int s[] = \"AB\";\n"
      "int z[5];\n"
      "void f() { }\n");
  ASSERT_EQ(m.globals.size(), 4u);
  EXPECT_EQ(m.globals[0].init_words, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(m.globals[1].init_words,
            (std::vector<std::uint32_t>{1, 0xFFFFFFFEu, 16}));
  EXPECT_EQ(m.globals[2].size_words, 2u);
  EXPECT_EQ(m.globals[2].init_words, (std::vector<std::uint32_t>{65, 66}));
  EXPECT_EQ(m.globals[3].size_words, 5u);
  EXPECT_TRUE(m.globals[3].init_words.empty());

  const ir::DataLayout layout = ir::layout_globals(m);
  EXPECT_EQ(layout.global_addr[0], cepic::kDataBase);
  EXPECT_EQ(layout.global_addr[1], cepic::kDataBase + 4);
  EXPECT_EQ(layout.global_addr[2], cepic::kDataBase + 16);
  EXPECT_EQ(layout.image.size(), (1 + 3 + 2 + 5) * 4u);
  // Big-endian word 7 at offset 0.
  EXPECT_EQ(layout.image[3], 7);
}

TEST(IrGen, ConstantFoldedGlobalSizesAndInits) {
  const ir::Module m = compile_to_ir(
      "int n[4 * 4];\n"
      "int k = (1 << 4) | 3;\n"
      "int c = 1 < 2 ? 10 : 20;\n");
  EXPECT_EQ(m.globals[0].size_words, 16u);
  EXPECT_EQ(m.globals[1].init_words[0], 19u);
  EXPECT_EQ(m.globals[2].init_words[0], 10u);
}

TEST(IrGen, GeneratedIrPassesVerifier) {
  const ir::Module m = compile_to_ir(
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int main() { return fib(10); }\n");
  EXPECT_NO_THROW(ir::verify_module(m, /*require_main=*/true));
}

TEST(IrGen, LocalArraysUseTheFrame) {
  const ir::Module m = compile_to_ir(
      "int f() { int a[8]; int b[2] = {5, 6}; a[0] = b[1]; return a[0]; }");
  const ir::Function* f = m.find_function("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->frame_bytes, (8 + 2) * 4u);
}

// ---- semantic errors ----

TEST(IrGenErrors, UndeclaredVariable) {
  EXPECT_THROW(compile_to_ir("int f() { return x; }"), CompileError);
}

TEST(IrGenErrors, UndeclaredFunction) {
  EXPECT_THROW(compile_to_ir("int f() { return g(); }"), CompileError);
}

TEST(IrGenErrors, WrongArgumentCount) {
  EXPECT_THROW(compile_to_ir("int g(int a) { return a; }"
                             "int f() { return g(1, 2); }"),
               CompileError);
}

TEST(IrGenErrors, RedeclarationInSameScope) {
  EXPECT_THROW(compile_to_ir("int f() { int a; int a; return 0; }"),
               CompileError);
}

TEST(IrGenErrors, ShadowingInInnerScopeIsAllowed) {
  EXPECT_NO_THROW(
      compile_to_ir("int f() { int a = 1; { int a = 2; a; } return a; }"));
}

TEST(IrGenErrors, DuplicateFunction) {
  EXPECT_THROW(compile_to_ir("void f() { } void f() { }"), CompileError);
}

TEST(IrGenErrors, DuplicateGlobal) {
  EXPECT_THROW(compile_to_ir("int x; int x;"), CompileError);
}

TEST(IrGenErrors, ArrayUsedAsValue) {
  EXPECT_THROW(compile_to_ir("int t[4]; int f() { return t + 1; }"),
               CompileError);
}

TEST(IrGenErrors, ScalarIndexed) {
  EXPECT_THROW(compile_to_ir("int x; int f() { return x[0]; }"),
               CompileError);
}

TEST(IrGenErrors, ScalarPassedWhereArrayExpected) {
  EXPECT_THROW(compile_to_ir("int g(int a[]) { return a[0]; }"
                             "int f() { int x; return g(x); }"),
               CompileError);
}

TEST(IrGenErrors, BreakOutsideLoop) {
  EXPECT_THROW(compile_to_ir("void f() { break; }"), CompileError);
  EXPECT_THROW(compile_to_ir("void f() { continue; }"), CompileError);
}

TEST(IrGenErrors, VoidReturningValue) {
  EXPECT_THROW(compile_to_ir("void f() { return 1; }"), CompileError);
}

TEST(IrGenErrors, NonVoidReturningNothing) {
  EXPECT_THROW(compile_to_ir("int f() { return; }"), CompileError);
}

TEST(IrGenErrors, NonConstantGlobalInitialiser) {
  EXPECT_THROW(compile_to_ir("int g() { return 1; } int x = g();"),
               CompileError);
}

TEST(IrGenErrors, NonPositiveArraySize) {
  EXPECT_THROW(compile_to_ir("int t[0];"), CompileError);
  EXPECT_THROW(compile_to_ir("int t[-3];"), CompileError);
}

TEST(IrGenErrors, TooManyInitialisers) {
  EXPECT_THROW(compile_to_ir("int t[2] = {1, 2, 3};"), CompileError);
}

TEST(IrGenErrors, BuiltinArity) {
  EXPECT_THROW(compile_to_ir("void f() { out(); }"), CompileError);
  EXPECT_THROW(compile_to_ir("void f() { out(1, 2); }"), CompileError);
  EXPECT_THROW(compile_to_ir("int f() { return min(1); }"), CompileError);
  EXPECT_THROW(compile_to_ir("int f() { return abs(1, 2); }"), CompileError);
}

}  // namespace
}  // namespace cepic::minic
