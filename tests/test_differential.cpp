// Differential testing: every bundled workload (SHA, AES, DCT,
// Dijkstra) and a corpus of seed-logged generated MiniC programs run
// through both the IR reference interpreter (the golden model) and the
// EPIC cycle-level simulator across 4 processor customisations (1-4
// ALUs), asserting identical OUT streams and exit state. The workloads
// are additionally checked against their bit-exact native golden
// references, closing the loop interpreter == simulator == native.
#include <gtest/gtest.h>

#include <sstream>

#include "pipeline/pipeline.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "mcheck/mcheck.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic {
namespace {

ir::InterpResult golden(const std::string& src) {
  ir::Module m = minic::compile_to_ir(src);
  return ir::Interpreter(m).run();
}

/// Every program this harness simulates must also prove statically
/// clean (-Werror) under mcheck for the same configuration: the
/// scheduler's architectural claims are checked by an independent
/// oracle, not just by the simulator happening to agree.
void expect_lint_clean(const std::string& src, const ProcessorConfig& cfg) {
  const Program program = pipeline::compile_once(src, cfg).program;
  const mcheck::Report rep =
      mcheck::check_program(program, mcheck::CheckOptions{.werror = true});
  EXPECT_TRUE(rep.clean()) << "on " << cfg.summary() << "\n" << rep.to_text();
}

/// Run `src` on the EPIC simulator for 1..4 ALUs and compare the OUT
/// stream and return value against the interpreter.
void expect_all_alu_configs_match(const std::string& src,
                                  const ir::InterpResult& gold) {
  for (unsigned alus = 1; alus <= 4; ++alus) {
    SCOPED_TRACE(cat(alus, " ALUs"));
    ProcessorConfig cfg;
    cfg.num_alus = alus;
    SimOptions sim_options;
    sim_options.max_cycles = 8'000'000'000ull;
    EpicSimulator sim = pipeline::run_once(src, cfg, {}, sim_options);
    EXPECT_EQ(sim.output(), gold.output);
    EXPECT_EQ(sim.gpr(3), gold.ret);
    expect_lint_clean(src, cfg);
  }
}

// ------------------------------------------------- bundled workloads

class WorkloadDifferential
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(WorkloadDifferential, InterpreterSimulatorAndNativeGoldenAgree) {
  const workloads::Workload& w = GetParam();
  const ir::InterpResult gold = golden(w.minic_source);
  // Interpreter vs the native reference implementation.
  EXPECT_EQ(gold.output, w.expected_output);
  // Simulator vs interpreter, across ALU counts.
  expect_all_alu_configs_match(w.minic_source, gold);
}

INSTANTIATE_TEST_SUITE_P(
    AllBundledWorkloads, WorkloadDifferential,
    ::testing::ValuesIn(workloads::all_workloads(
        /*sha_dim=*/8, /*aes_iters=*/2, /*dct_dim=*/8,
        /*dijkstra_nodes=*/6)),
    [](const ::testing::TestParamInfo<workloads::Workload>& info) {
      return info.param.name;
    });

// ------------------------------------------------ generated programs

/// Deterministic random MiniC program: four int variables mutated by a
/// loop of random arithmetic/logic statements (division and remainder
/// use non-zero literal divisors; shift counts are small literals), some
/// guarded by random comparisons to exercise if-conversion. Every
/// execution path ends by emitting all variables through out().
std::string generate_program(Prng& rng) {
  const char kVars[] = {'a', 'b', 'c', 'd'};
  std::ostringstream os;
  os << "int main() {\n";
  for (char v : kVars) {
    os << "  int " << v << " = " << rng.next_in(-1000, 1000) << ";\n";
  }
  os << "  for (int i = 0; i < " << rng.next_in(4, 12) << "; i++) {\n";
  const int statements = rng.next_in(5, 12);
  for (int s = 0; s < statements; ++s) {
    const char dst = kVars[rng.next_below(4)];
    const auto operand = [&]() -> std::string {
      if (rng.next_below(3) == 0) return cat(rng.next_in(-99, 99));
      return std::string(1, kVars[rng.next_below(4)]);
    };
    os << "    ";
    if (rng.next_below(4) == 0) {
      static const char* kCmps[] = {"<", "<=", ">", ">=", "==", "!="};
      os << "if (" << kVars[rng.next_below(4)] << " "
         << kCmps[rng.next_below(6)] << " " << kVars[rng.next_below(4)]
         << ") ";
    }
    os << dst << " = ";
    switch (rng.next_below(10)) {
      case 0: os << operand() << " + " << operand(); break;
      case 1: os << operand() << " - " << operand(); break;
      case 2: os << operand() << " * " << operand(); break;
      case 3: os << operand() << " & " << operand(); break;
      case 4: os << operand() << " | " << operand(); break;
      case 5: os << operand() << " ^ " << operand(); break;
      case 6: os << operand() << " / " << rng.next_in(1, 9); break;
      case 7: os << operand() << " % " << rng.next_in(1, 9); break;
      case 8: os << operand() << " << " << rng.next_below(8); break;
      default: os << operand() << " >>> " << rng.next_below(8); break;
    }
    os << ";\n";
  }
  os << "    " << kVars[rng.next_below(4)] << " ^= i;\n";
  os << "  }\n";
  os << "  out(a); out(b); out(c); out(d); out(a ^ b ^ c ^ d);\n";
  os << "  return (a ^ b) & 0xFF;\n}\n";
  return os.str();
}

TEST(GeneratedDifferential, RandomProgramsAgreeAcrossAluCounts) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Prng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::string src = generate_program(rng);
    SCOPED_TRACE(cat("seed=", seed, "\n", src));
    const ir::InterpResult gold = golden(src);
    ASSERT_EQ(gold.output.size(), 5u);
    expect_all_alu_configs_match(src, gold);
  }
}

TEST(GeneratedDifferential, RandomProgramsAgreeAcrossIssueWidths) {
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    Prng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::string src = generate_program(rng);
    SCOPED_TRACE(cat("seed=", seed, "\n", src));
    const ir::InterpResult gold = golden(src);
    for (unsigned issue : {1u, 2u, 4u}) {
      SCOPED_TRACE(cat("issue_width=", issue));
      ProcessorConfig cfg;
      cfg.issue_width = issue;
      EpicSimulator sim = pipeline::run_once(src, cfg);
      EXPECT_EQ(sim.output(), gold.output);
      EXPECT_EQ(sim.gpr(3), gold.ret);
      expect_lint_clean(src, cfg);
    }
  }
}

/// Forwarding off forces the scheduler to cover full write-to-read
/// latencies with explicit distance instead of bypass paths — a
/// different schedule, the same architectural results.
TEST(GeneratedDifferential, RandomProgramsAgreeWithForwardingOff) {
  for (std::uint64_t seed = 30; seed <= 34; ++seed) {
    Prng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::string src = generate_program(rng);
    SCOPED_TRACE(cat("seed=", seed, "\n", src));
    const ir::InterpResult gold = golden(src);
    for (unsigned alus : {1u, 2u, 4u}) {
      SCOPED_TRACE(cat("num_alus=", alus, " forwarding=0"));
      ProcessorConfig cfg;
      cfg.num_alus = alus;
      cfg.forwarding = false;
      EpicSimulator sim = pipeline::run_once(src, cfg);
      EXPECT_EQ(sim.output(), gold.output);
      EXPECT_EQ(sim.gpr(3), gold.ret);
      expect_lint_clean(src, cfg);
    }
  }
}

/// Unified-memory contention stalls overlapping accesses; combined with
/// deeper pipelines it reshuffles timing aggressively, but the
/// architectural OUT stream and exit state must be untouched.
TEST(GeneratedDifferential, RandomProgramsAgreeUnderMemoryContention) {
  for (std::uint64_t seed = 35; seed <= 39; ++seed) {
    Prng rng(seed * 0x9E3779B97F4A7C15ull);
    const std::string src = generate_program(rng);
    SCOPED_TRACE(cat("seed=", seed, "\n", src));
    const ir::InterpResult gold = golden(src);
    for (unsigned stages : {2u, 3u, 4u}) {
      SCOPED_TRACE(cat("stages=", stages, " contention=1"));
      ProcessorConfig cfg;
      cfg.num_alus = 2;
      cfg.pipeline_stages = stages;
      cfg.unified_memory_contention = true;
      EpicSimulator sim = pipeline::run_once(src, cfg);
      EXPECT_EQ(sim.output(), gold.output);
      EXPECT_EQ(sim.gpr(3), gold.ret);
    }
  }
}

}  // namespace
}  // namespace cepic
