// Preservation soundness for the optimiser's analysis manager.
//
// The incremental pipeline is only correct if two contracts hold:
//
//  1. PreservedAnalyses claims are sound — an analysis a pass kept
//     cached equals a fresh recomputation (checked differentially here
//     for every pass over the fuzz corpus, and continuously by the
//     manager's verify mode during full pipeline runs);
//  2. sparse scheduling is invisible — optimize() with incremental
//     seeds/skips produces byte-identical printed IR to the dense
//     reference mode, pinned long-term by tests/golden/
//     optimize_digests.txt (regenerate by rerunning the digest test
//     with CEPIC_REGEN_GOLDEN=1 in the environment).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/manager.hpp"
#include "frontend/irgen.hpp"
#include "ir/ir.hpp"
#include "ir/verify.hpp"
#include "opt/opt.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "workloads/workloads.hpp"

#include "test_util.hpp"

namespace cepic {
namespace {

std::vector<workloads::Workload> corpus_workloads() {
  std::vector<workloads::Workload> ws = workloads::all_workloads(16, 8, 8, 8);
  ws.push_back(workloads::make_dct(16));  // the BM_Optimize module
  return ws;
}

/// The fuzz slice of the corpus: seed -> module, skipping generated
/// modules the verifier rejects (the generator is unconstrained).
std::vector<std::pair<std::uint64_t, ir::Module>> corpus_fuzz(
    std::uint64_t max_seed) {
  std::vector<std::pair<std::uint64_t, ir::Module>> out;
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    Prng rng(seed);
    ir::Module m = testutil::random_module(rng);
    try {
      ir::verify_module(m);
    } catch (const InternalError&) {
      continue;
    }
    out.emplace_back(seed, std::move(m));
  }
  return out;
}

std::string digest_of(ir::Module m, const opt::OptOptions& opts) {
  try {
    opt::optimize(m, opts);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(ir::to_string(m))));
    return buf;
  } catch (const std::exception&) {
    return "throw";  // collapse; error text may vary
  }
}

// ------------------------------------------------ golden digest corpus

TEST(OptimizeGolden, DigestsMatchCommittedCorpus) {
  std::ostringstream fresh;
  for (const workloads::Workload& w : corpus_workloads()) {
    const ir::Module m = minic::compile_to_ir(w.minic_source);
    fresh << "workload " << w.name << " default " << digest_of(m, {}) << "\n";
    opt::OptOptions licm;
    licm.licm = true;
    fresh << "workload " << w.name << " licm " << digest_of(m, licm) << "\n";
  }
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Prng rng(seed);
    ir::Module m = testutil::random_module(rng);
    fresh << "fuzz " << seed << " default ";
    try {
      ir::verify_module(m);
      fresh << digest_of(std::move(m), {});
    } catch (const InternalError&) {
      fresh << "skip";
    }
    fresh << "\n";
  }

  const std::string path =
      std::string(CEPIC_TEST_DIR) + "/golden/optimize_digests.txt";
  if (std::getenv("CEPIC_REGEN_GOLDEN") != nullptr) {  // NOLINT(concurrency-mt-unsafe)
    std::ofstream out(path, std::ios::binary);
    out << fresh.str();
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden corpus at " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), fresh.str())
      << "optimized IR drifted from the committed digests; if the change "
         "is intentional, update tests/golden/optimize_digests.txt";
}

// ----------------------------------------- sparse == dense, bytewise

TEST(SparseScheduling, MatchesDenseReferenceBytewise) {
  const auto check = [](const ir::Module& m, opt::OptOptions opts,
                        const std::string& tag) {
    ir::Module sparse_m = m;
    ir::Module dense_m = m;
    opts.incremental = true;
    opt::optimize(sparse_m, opts);
    opts.incremental = false;
    opt::optimize(dense_m, opts);
    EXPECT_EQ(ir::to_string(sparse_m), ir::to_string(dense_m))
        << "sparse/dense divergence on " << tag;
  };
  for (const workloads::Workload& w : corpus_workloads()) {
    const ir::Module m = minic::compile_to_ir(w.minic_source);
    check(m, {}, w.name);
    opt::OptOptions licm;
    licm.licm = true;
    check(m, licm, w.name + " (licm)");
  }
  for (auto& [seed, m] : corpus_fuzz(300)) {
    try {
      check(m, {}, "fuzz seed " + std::to_string(seed));
    } catch (const InternalError&) {
      // Some fuzz modules trip the optimiser's verifier in both modes;
      // equivalence over them is covered by the digest corpus above.
    }
  }
}

// ----------------------- differential verify through full pipeline runs

TEST(PreservationSoundness, FullPipelineUnderDifferentialVerify) {
  // verify_analyses recomputes every claimed-preserved cached analysis
  // at every invalidation and throws naming the over-claiming pass.
  opt::OptOptions opts;
  opts.verify_analyses = true;
  for (const workloads::Workload& w : corpus_workloads()) {
    ir::Module m = minic::compile_to_ir(w.minic_source);
    ASSERT_NO_THROW(opt::optimize(m, opts)) << w.name;
    ir::Module m2 = minic::compile_to_ir(w.minic_source);
    opt::OptOptions licm = opts;
    licm.licm = true;
    ASSERT_NO_THROW(opt::optimize(m2, licm)) << w.name << " (licm)";
  }
  for (auto& [seed, m] : corpus_fuzz(300)) {
    try {
      opt::optimize(m, opts);
    } catch (const InternalError& e) {
      // Only preservation violations matter here; fuzz modules may
      // legitimately fail post-pass IR verification in any mode.
      EXPECT_EQ(std::string(e.what()).find("claimed to preserve"),
                std::string::npos)
          << "seed " << seed << ": " << e.what();
    }
  }
}

// ------------------- per pass x module: cache vs fresh recomputation

TEST(PreservationSoundness, PerPassCachedAnalysesMatchFresh) {
  using analysis::AnalysisManager;
  const auto check_fn = [](ir::Function& fn, const char* tag) {
    struct NamedPass {
      const char* name;
      bool (*run)(ir::Function&, opt::PassContext&);
    };
    const NamedPass passes[] = {
        {"constfold", [](ir::Function& f, opt::PassContext& c) {
           return opt::pass_constfold(f, c);
         }},
        {"copy_propagate", [](ir::Function& f, opt::PassContext& c) {
           return opt::pass_copy_propagate(f, c);
         }},
        {"cse", [](ir::Function& f, opt::PassContext& c) {
           return opt::pass_cse(f, c);
         }},
        {"dce", [](ir::Function& f, opt::PassContext& c) {
           return opt::pass_dce(f, c);
         }},
        {"simplify_cfg", [](ir::Function& f, opt::PassContext& c) {
           return opt::pass_simplify_cfg(f, c);
         }},
    };
    for (const NamedPass& pass : passes) {
      AnalysisManager am;
      // Warm every cache slot, then let the pass invalidate what it
      // must: whatever the getters serve afterwards has to agree with
      // a from-scratch recomputation.
      am.cfg(fn);
      am.dominators(fn);
      am.liveness(fn);
      am.reaching_defs(fn);
      am.available_copies(fn);
      opt::PassContext ctx(am);
      pass.run(fn, ctx);
      const analysis::Cfg fresh_cfg = analysis::Cfg::build(fn);
      EXPECT_EQ(am.cfg(fn), fresh_cfg) << pass.name << " on " << tag;
      EXPECT_EQ(am.dominators(fn), compute_dominators(fn, fresh_cfg))
          << pass.name << " on " << tag;
      EXPECT_EQ(am.liveness(fn), compute_liveness(fn, fresh_cfg))
          << pass.name << " on " << tag;
      EXPECT_EQ(am.reaching_defs(fn), compute_reaching_defs(fn, fresh_cfg))
          << pass.name << " on " << tag;
      EXPECT_EQ(am.available_copies(fn),
                compute_available_copies(fn, fresh_cfg))
          << pass.name << " on " << tag;
    }
  };
  for (auto& [seed, m] : corpus_fuzz(200)) {
    const std::string tag = "fuzz seed " + std::to_string(seed);
    for (ir::Function& fn : m.functions) check_fn(fn, tag.c_str());
  }
  for (const workloads::Workload& w : corpus_workloads()) {
    ir::Module m = minic::compile_to_ir(w.minic_source);
    for (ir::Function& fn : m.functions) check_fn(fn, w.name.c_str());
  }
}

// --------------------------------------------- manager unit behaviour

TEST(AnalysisManager, VersionBumpsAndPreservedResultsSurvive) {
  ir::Module m = minic::compile_to_ir(
      "int main() { int a = 1; int b = a + 2; return b; }");
  ir::Function& fn = m.functions.front();
  analysis::AnalysisManager am;
  EXPECT_EQ(am.version(fn), 1u);
  const analysis::Liveness* live = &am.liveness(fn);
  const analysis::Cfg* cfg = &am.cfg(fn);

  am.invalidate(fn,
                analysis::PreservedAnalyses::none().preserve(
                    analysis::AnalysisKind::kCfg),
                "test");
  EXPECT_EQ(am.version(fn), 2u);
  // The preserved CFG is served from cache (same object); liveness was
  // dropped and comes back as a fresh equal result (the heap may hand
  // the replacement the same address, so only values are asserted).
  EXPECT_EQ(&am.cfg(fn), cfg);
  EXPECT_EQ(am.liveness(fn), compute_liveness(fn, *cfg));
  (void)live;

  am.invalidate_all(fn);
  EXPECT_EQ(am.version(fn), 3u);
  EXPECT_EQ(am.cfg(fn), analysis::Cfg::build(fn));
}

TEST(AnalysisManager, VerifyModeCatchesOverclaimedPreservation) {
  ir::Module m = minic::compile_to_ir(
      "int main() { int a = 1; int b = a + 2; return b; }");
  ir::Function& fn = m.functions.front();
  analysis::AnalysisManager am;
  am.set_verify(true);
  am.liveness(fn);

  // Mutate the function behind the manager's back (a new block changes
  // the shape of every per-block result), then falsely claim everything
  // survived.
  const int added = fn.add_block("mut");
  ir::IrInst ret;
  ret.op = ir::IrOp::Ret;
  if (fn.returns_value) ret.a = ir::Value::i(0);
  fn.blocks[added].insts.push_back(ret);

  EXPECT_THROW(am.invalidate(fn, analysis::PreservedAnalyses::all(),
                             "bad_pass"),
               InternalError);
}

}  // namespace
}  // namespace cepic
