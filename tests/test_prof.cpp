// The offline analytics library behind cepic-prof (src/obs/report):
// span self-time aggregation over Chrome trace exports, cross-run
// regression diffs for traces and metrics, and the bench-trajectory
// parsing + ratio guards that gate CI's perf-smoke job.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"

namespace cepic {
namespace {

namespace report = obs::report;

/// A minimal trace document: backend.schedule encloses opt.cse on the
/// same thread; scale stretches the outer span's duration.
obs::json::Value trace_doc(double outer_dur_us) {
  std::string text =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"name\":\"schedule\",\"cat\":\"backend\",\"pid\":1,"
      "\"tid\":1,\"ts\":0,\"dur\":" + std::to_string(outer_dur_us) + "},"
      "{\"ph\":\"X\",\"name\":\"cse\",\"cat\":\"opt\",\"pid\":1,"
      "\"tid\":1,\"ts\":100,\"dur\":500},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,\"ts\":0}"
      "],\"otherData\":{}}";
  return obs::json::parse(text);
}

obs::json::Value metrics_doc(double p50_ns, double counter) {
  std::string text =
      "{\"counters\":{\"sim.runs\":" + std::to_string(counter) + "},"
      "\"gauges\":{},"
      "\"histograms\":{"
      "\"pipeline.compile_ns\":{\"count\":10,\"sum\":1,\"max\":1,"
      "\"p50\":" + std::to_string(p50_ns) + ","
      "\"p90\":" + std::to_string(p50_ns * 2) + ","
      "\"p99\":" + std::to_string(p50_ns * 3) + "},"
      "\"tiny.hist_ns\":{\"count\":10,\"sum\":1,\"max\":1,"
      "\"p50\":" + std::to_string(p50_ns / 100) + ",\"p90\":1,\"p99\":1}"
      "}}";
  return obs::json::parse(text);
}

const report::DiffRow* find_row(const report::DiffReport& rep,
                                std::string_view prefix) {
  for (const report::DiffRow& row : rep.rows) {
    if (row.name.rfind(prefix, 0) == 0) return &row;
  }
  return nullptr;
}

// ------------------------------------------------------ span analytics

TEST(SpanAnalytics, SelfTimeSubtractsNestedChildren) {
  const std::vector<report::SpanAgg> aggs =
      report::aggregate_spans(trace_doc(1000));
  ASSERT_EQ(aggs.size(), 2u);  // name-sorted, metadata events ignored
  EXPECT_EQ(aggs[0].name, "backend.schedule");
  EXPECT_EQ(aggs[0].total, 1000);
  EXPECT_EQ(aggs[0].self, 500);  // 1000 minus the nested cse span
  EXPECT_EQ(aggs[1].name, "opt.cse");
  EXPECT_EQ(aggs[1].self, 500);
  EXPECT_EQ(aggs[1].count, 1u);
}

// ------------------------------------------------------ cross-run diff

TEST(Diff, IdenticalTracesReportZeroRegressions) {
  const report::DiffReport rep =
      report::diff_documents(trace_doc(1000), trace_doc(1000));
  EXPECT_EQ(rep.regressions, 0u);
  for (const report::DiffRow& row : rep.rows) EXPECT_FALSE(row.regressed);
}

TEST(Diff, FlagsSeededSlowdownInTraceSelfTime) {
  // Doubling the outer span's duration triples its self time
  // (500us -> 1500us): well past the 1.5x default threshold.
  const report::DiffReport rep =
      report::diff_documents(trace_doc(1000), trace_doc(2000));
  EXPECT_EQ(rep.regressions, 1u);
  const report::DiffRow* row = find_row(rep, "backend.schedule");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->regressed);
  EXPECT_EQ(row->a, 500);
  EXPECT_EQ(row->b, 1500);
  EXPECT_DOUBLE_EQ(row->ratio, 3.0);
  // Regressed rows sort first.
  EXPECT_EQ(rep.rows.front().name, row->name);
}

TEST(Diff, MetricsQuantileRegressionFlaggedAboveNoiseFloor) {
  const report::DiffReport rep =
      report::diff_documents(metrics_doc(20000, 5), metrics_doc(60000, 50));
  const report::DiffRow* p50 = find_row(rep, "pipeline.compile_ns p50(ns)");
  ASSERT_NE(p50, nullptr);
  EXPECT_TRUE(p50->regressed);
  EXPECT_DOUBLE_EQ(p50->ratio, 3.0);
  EXPECT_GE(rep.regressions, 1u);
  // The tiny histogram tripled too, but sits under min_quantile_ns on
  // both sides: noise, never flagged.
  EXPECT_EQ(find_row(rep, "tiny.hist_ns"), nullptr);
  // Counters are reported for context but are informational only.
  const report::DiffRow* counter = find_row(rep, "counter sim.runs");
  ASSERT_NE(counter, nullptr);
  EXPECT_FALSE(counter->regressed);
}

TEST(Diff, MismatchedDocumentKindsThrow) {
  EXPECT_THROW(report::diff_documents(trace_doc(1000), metrics_doc(20000, 1)),
               Error);
  EXPECT_THROW(
      report::diff_documents(obs::json::parse("{}"), obs::json::parse("{}")),
      Error);
}

// --------------------------------------------------- bench trajectory

TEST(Bench, ParsesRawRunNormalizingTimeUnits) {
  const obs::json::Value doc = obs::json::parse(
      "{\"context\":{\"date\":\"2026-08-09\",\"cmake_build_type\":"
      "\"Release\",\"git_commit\":\"abc1234\",\"git_dirty\":true},"
      "\"benchmarks\":["
      "{\"name\":\"BM_EpicSimulator\",\"run_type\":\"iteration\","
      "\"real_time\":2.5,\"time_unit\":\"ms\",\"sim_cycles/s\":4.0e9},"
      "{\"name\":\"BM_EpicSimulator\",\"run_type\":\"aggregate\","
      "\"real_time\":9999,\"time_unit\":\"ms\"}"
      "]}");
  const report::BenchRun run = report::parse_run(doc, "fresh");
  EXPECT_EQ(run.label, "fresh");
  EXPECT_EQ(run.commit, "abc1234");
  EXPECT_EQ(run.date, "2026-08-09");
  EXPECT_EQ(run.cmake_build_type, "Release");
  EXPECT_TRUE(run.git_dirty);
  ASSERT_EQ(run.benchmarks.count("BM_EpicSimulator"), 1u);
  const report::BenchMeasure& m = run.benchmarks.at("BM_EpicSimulator");
  EXPECT_DOUBLE_EQ(m.real_time_ns, 2.5e6);  // ms -> ns; aggregate skipped
  ASSERT_EQ(m.rates.count("sim_cycles/s"), 1u);
  EXPECT_DOUBLE_EQ(m.rates.at("sim_cycles/s"), 4.0e9);
}

TEST(Bench, ParsesHistoryAndTagsNonReleaseRuns) {
  const obs::json::Value doc = obs::json::parse(
      "{\"runs\":["
      "{\"label\":\"v1\",\"commit\":\"aaa\",\"date\":\"d1\","
      "\"context\":{},\"benchmarks\":["
      "{\"name\":\"BM_Frontend\",\"real_time\":10,\"time_unit\":\"us\"}]},"
      "{\"label\":\"v2 (non-release: Debug)\",\"commit\":\"bbb\","
      "\"date\":\"d2\",\"context\":{},\"benchmarks\":["
      "{\"name\":\"BM_Frontend\",\"real_time\":99,\"time_unit\":\"us\"}]}"
      "]}");
  const std::vector<report::BenchRun> runs = report::parse_history(doc);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].commit, "aaa");
  EXPECT_TRUE(runs[0].release_eligible());
  EXPECT_FALSE(runs[1].release_eligible());
  EXPECT_THROW(report::parse_history(obs::json::parse("{}")), Error);
}

/// Build a run carrying the two simulator-tier benchmarks with the
/// given sim_cycles/s rates.
report::BenchRun tier_run(std::string label, double fast, double legacy) {
  report::BenchRun run;
  run.label = std::move(label);
  report::BenchMeasure m_fast, m_legacy;
  m_fast.rates["sim_cycles/s"] = fast;
  m_legacy.rates["sim_cycles/s"] = legacy;
  run.benchmarks["BM_EpicSimulator"] = m_fast;
  run.benchmarks["BM_EpicSimulatorLegacy"] = m_legacy;
  run.benchmarks["BM_EpicSimulatorDecode"] = m_legacy;
  return run;
}

const report::RatioCheck* find_check(const std::vector<report::RatioCheck>& cs,
                                     std::string_view name) {
  for (const report::RatioCheck& c : cs) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(Bench, RatioGuardPassesAtOrAboveFloor) {
  // Baseline tier ratio 5.0; floor = 0.75 * 5.0 = 3.75.
  const std::vector<report::BenchRun> history = {tier_run("base", 5e9, 1e9)};
  const std::vector<report::RatioCheck> checks =
      report::check_ratios(history, tier_run("fresh", 4e9, 1e9));
  const report::RatioCheck* c =
      find_check(checks, "BM_EpicSimulator/BM_EpicSimulatorLegacy");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->baseline_label, "base");
  EXPECT_DOUBLE_EQ(c->baseline, 5.0);
  EXPECT_DOUBLE_EQ(c->limit, 3.75);
  EXPECT_DOUBLE_EQ(c->fresh, 4.0);
  EXPECT_TRUE(c->is_floor);
  EXPECT_TRUE(c->ok);
}

TEST(Bench, RatioGuardFailsBelowFloorAndSkipsNonReleaseBaselines) {
  // The newer non-release run (ratio 100) must not become the baseline;
  // against the release baseline (ratio 5) a fresh ratio of 2 fails.
  const std::vector<report::BenchRun> history = {
      tier_run("base", 5e9, 1e9),
      tier_run("debug (non-release: Debug)", 100e9, 1e9)};
  const std::vector<report::RatioCheck> checks =
      report::check_ratios(history, tier_run("fresh", 2e9, 1e9));
  const report::RatioCheck* c =
      find_check(checks, "BM_EpicSimulator/BM_EpicSimulatorLegacy");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->baseline_label, "base");
  EXPECT_DOUBLE_EQ(c->limit, 3.75);
  EXPECT_FALSE(c->ok);
}

TEST(Bench, RatioGuardHandlesMissingBenchmarks) {
  const std::vector<report::BenchRun> history = {tier_run("base", 5e9, 1e9)};
  // Fresh run lost the legacy tier: with a committed baseline that is a
  // hard failure, not a silent skip.
  report::BenchRun fresh = tier_run("fresh", 5e9, 1e9);
  fresh.benchmarks.erase("BM_EpicSimulatorLegacy");
  const std::vector<report::RatioCheck> failed =
      report::check_ratios(history, fresh);
  const report::RatioCheck* c =
      find_check(failed, "BM_EpicSimulator/BM_EpicSimulatorLegacy");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->ok);
  // No committed baseline at all (e.g. the wall-time pair here):
  // reported as skipped, ok, with an empty baseline label.
  const report::RatioCheck* time_pair =
      find_check(failed, "BM_Optimize/BM_Frontend (time)");
  ASSERT_NE(time_pair, nullptr);
  EXPECT_TRUE(time_pair->ok);
  EXPECT_TRUE(time_pair->baseline_label.empty());
}

TEST(Bench, WallTimeCeilingGuard) {
  auto time_run = [](std::string label, double opt_ns, double frontend_ns) {
    report::BenchRun run;
    run.label = std::move(label);
    report::BenchMeasure opt, fe;
    opt.real_time_ns = opt_ns;
    fe.real_time_ns = frontend_ns;
    run.benchmarks["BM_Optimize"] = opt;
    run.benchmarks["BM_Frontend"] = fe;
    return run;
  };
  // Baseline ratio 2.0; ceiling = 1.6 * 2.0 = 3.2.
  const std::vector<report::BenchRun> history = {time_run("base", 2000, 1000)};
  const report::RatioCheck* ok_check = find_check(
      report::check_ratios(history, time_run("fresh", 3000, 1000)),
      "BM_Optimize/BM_Frontend (time)");
  ASSERT_NE(ok_check, nullptr);
  EXPECT_FALSE(ok_check->is_floor);
  EXPECT_TRUE(ok_check->ok);
  const report::RatioCheck* bad_check = find_check(
      report::check_ratios(history, time_run("fresh", 4000, 1000)),
      "BM_Optimize/BM_Frontend (time)");
  ASSERT_NE(bad_check, nullptr);
  EXPECT_FALSE(bad_check->ok);
}

}  // namespace
}  // namespace cepic
