// Error-path tests for the IR text parser: every diagnostic branch in
// ir/parse.cpp must throw CompileError with the exact line:column of
// the offending token.
#include <gtest/gtest.h>

#include "ir/parse.hpp"
#include "support/error.hpp"

namespace cepic::ir {
namespace {

struct Loc {
  int line;
  int col;
};

void expect_parse_error(const std::string& text, std::string_view needle,
                        Loc loc) {
  try {
    parse_module(text);
    FAIL() << "parse_module accepted: " << text;
  } catch (const CompileError& e) {
    EXPECT_NE(std::string_view(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
    EXPECT_EQ(e.line(), loc.line) << e.what();
    EXPECT_EQ(e.col(), loc.col) << e.what();
  }
}

TEST(IrParse, GlobalMissingAtSign) {
  expect_parse_error("global g[2]", "expected '@'", {1, 8});
}

TEST(IrParse, GlobalMissingName) {
  expect_parse_error("global @[2]", "expected an identifier", {1, 9});
}

TEST(IrParse, GlobalMissingSize) {
  expect_parse_error("global @g[]", "expected an integer", {1, 11});
}

TEST(IrParse, GlobalZeroSize) {
  expect_parse_error("global @g[0]", "bad global size 0", {1, 12});
}

TEST(IrParse, GlobalInitialiserOverflow) {
  expect_parse_error("global @g[1] = {99999999999}",
                     "initialiser 99999999999 does not fit in 32 bits",
                     {1, 28});
}

TEST(IrParse, GlobalTrailingCharacters) {
  expect_parse_error("global @g[1] xx", "trailing characters after global",
                     {1, 14});
}

TEST(IrParse, FunctionBodyNotClosed) {
  expect_parse_error("int main() frame=0 {",
                     "unexpected end of input: function body not closed",
                     {1, 1});
}

TEST(IrParse, BadFrameSize) {
  expect_parse_error("int main() frame=-4 {", "bad frame size -4", {1, 20});
}

TEST(IrParse, TrailingAfterFunctionHeader) {
  expect_parse_error("int main() frame=0 { xx",
                     "trailing characters after function header", {1, 22});
}

TEST(IrParse, InstructionBeforeFirstBlockHeader) {
  expect_parse_error(
      "int main() frame=0 {\n"
      "ret 0\n"
      "}\n",
      "instruction before the first block header", {2, 1});
}

TEST(IrParse, BlockHeaderOutOfOrder) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b1:\n"
      "ret 0\n"
      "}\n",
      "block header .b1 out of order (expected .b0)", {2, 4});
}

TEST(IrParse, TrailingAfterBlockHeader) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0: xx\n"
      "ret 0\n"
      "}\n",
      "trailing characters after block header", {2, 6});
}

TEST(IrParse, BadVregZero) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "%0 = 1\n"
      "}\n",
      "bad vreg %0", {3, 3});
}

TEST(IrParse, ImmediateOverflow) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "ret 99999999999\n"
      "}\n",
      "immediate 99999999999 does not fit in 32 bits", {3, 16});
}

TEST(IrParse, NegativeBlockReference) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "br .b-1\n"
      "}\n",
      "bad block reference .b-1", {3, 8});
}

TEST(IrParse, UnknownIrOp) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "%1 = bogus 1, 2\n"
      "}\n",
      "unknown IR op 'bogus'", {3, 12});
}

TEST(IrParse, UnknownGlobal) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "%1 = gaddr @zzz\n"
      "ret %1\n"
      "}\n",
      "unknown global '@zzz'", {3, 16});
}

TEST(IrParse, TrailingAfterInstruction) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "ret 0 xx\n"
      "}\n",
      "trailing characters after instruction", {3, 7});
}

TEST(IrParse, TrailingAfterCloseBrace) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "ret 0\n"
      "} xx\n",
      "trailing characters after '}'", {4, 3});
}

TEST(IrParse, MissingCondBrColon) {
  expect_parse_error(
      "int main() frame=0 {\n"
      ".b0:\n"
      "condbr 1 ? .b0\n"
      "ret 0\n"
      "}\n",
      "expected ':'", {3, 15});
}

// Round-trip sanity: a module that uses every diagnostic-adjacent
// construct still parses when well-formed.
TEST(IrParse, WellFormedModuleParses) {
  const ir::Module m = parse_module(
      "global @g[2] = {1, 2}\n"
      "int main(%1) frame=8 {\n"
      ".b0(entry):\n"
      "  [!%1] %2 = 7\n"
      "  %3 = gaddr @g\n"
      "  %4 = load.w [%3 + 0]\n"
      "  store.w [%3 + 4] <- %4\n"
      "  %5 = faddr + 0\n"
      "  condbr %2 ? .b1 : .b1\n"
      ".b1:\n"
      "  ret %4\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].blocks.size(), 2u);
  EXPECT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.functions[0].next_vreg, 6u);
}

}  // namespace
}  // namespace cepic::ir
