// The observability layer (src/obs) and its integrations: span
// recording across the pipeline thread pool, concurrent counters,
// latency histograms (bucket scheme, quantile error bounds, exact
// shard merges under the thread pool), the always-on flight recorder
// (ring wraparound, fault dumps, schema conformance), exporter
// goldens, the JSON parser + schema validator pair, the simulator's
// per-cycle timeline reconciling with SimStats on both execution
// paths, the explicit trace-truncation marker, and the no-allocation
// guarantee of disabled-mode tracing on the simulator hot loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/schema.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"
#include "support/error.hpp"

// --- allocation counting (no-allocation tests) ------------------------
// Counting is off except inside the windows the tests open, so the
// overridden operators stay invisible to the rest of the binary.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
// The overridden operator new above allocates with malloc, so free() is
// the matching deallocator; GCC cannot see the pairing and warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#if defined(__SANITIZE_ADDRESS__)
#define CEPIC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CEPIC_TEST_ASAN 1
#endif
#endif

namespace cepic {
namespace {

/// Reset the global registry and force a known tracing state; restores
/// disabled-mode on scope exit so tests cannot leak state.
struct ObsFixture {
  explicit ObsFixture(bool enable) {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::flight_reset();
    obs::set_enabled(enable);
  }
  ~ObsFixture() {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::flight_reset();
  }
};

const char* kStallProg =
    "int main() {"
    "  int s = 3;"
    "  for (int i = 1; i < 40; i++) { s = s * s % 9973 + i; }"
    "  out(s); return s & 0xFF; }";

const char* kQuietProg =
    "int main() {"
    "  int s = 0;"
    "  for (int i = 0; i < 64; i++) s += i * 5 - (i >> 1);"
    "  return s & 0xFF; }";

Program compile(const char* source, const ProcessorConfig& config) {
  pipeline::Service service;
  return service.compile_program(source, config);
}

// ------------------------------------------------------------- spans

TEST(Span, RecordsNestingOnOneThread) {
  ObsFixture fx(true);
  {
    obs::Span outer("outer", "test");
    obs::Span inner("inner", "test");
    inner.arg("k", std::uint64_t{7});
  }
  const std::vector<obs::SpanRecord> spans = obs::Registry::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order records inner first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].key, "k");
  EXPECT_EQ(spans[0].args[0].value, "7");
  EXPECT_TRUE(spans[0].args[0].numeric);
}

TEST(Span, InertWhenDisabled) {
  ObsFixture fx(false);
  obs::Span span("never", "test");
  span.arg("k", "v");
  EXPECT_FALSE(span.active());
  EXPECT_TRUE(obs::Registry::instance().spans().empty());
}

TEST(Span, DistinctThreadIdsAcrossThreadPool) {
  ObsFixture fx(true);
  pipeline::ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.submit([] { obs::Span span("task", "test"); });
  }
  pool.wait();
  const std::vector<obs::SpanRecord> spans = obs::Registry::instance().spans();
  ASSERT_EQ(spans.size(), 32u);
  std::set<int> tids;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.name, "task");
    tids.insert(s.tid);
  }
  // Dense ids, one per worker that ran at least one task.
  EXPECT_GE(tids.size(), 1u);
  EXPECT_LE(tids.size(), 4u);
  EXPECT_GE(*tids.begin(), 1);
}

TEST(Counters, ExactUnderConcurrentIncrements) {
  ObsFixture fx(false);  // counters are independent of the span switch
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) obs::add("test.concurrent");
    });
  }
  for (std::thread& t : threads) t.join();
  const auto counters = obs::Registry::instance().counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "test.concurrent");
  EXPECT_EQ(counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------- export goldens

TEST(ChromeTraceJson, GoldenDocument) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent meta;
  meta.ph = 'M';
  meta.name = "thread_name";
  meta.tid = 2;
  meta.args.push_back({"name", "ALU0", false});
  events.push_back(meta);
  obs::TraceEvent span;
  span.ph = 'X';
  span.name = "fold \"x\"";
  span.cat = "opt";
  span.ts = 1.5;
  span.dur = 2;
  span.tid = 3;
  span.args.push_back({"n", "7", true});
  events.push_back(span);
  const std::string json = obs::chrome_trace_json(
      events, {{"time_unit", "cycles", false}, {"cycles", "42", true}});
  EXPECT_EQ(json,
            "{\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":2,"
            "\"ts\":0,\"args\":{\"name\":\"ALU0\"}},\n"
            "{\"ph\":\"X\",\"name\":\"fold \\\"x\\\"\",\"pid\":1,\"tid\":3,"
            "\"cat\":\"opt\",\"ts\":1.5,\"dur\":2,\"args\":{\"n\":7}}\n"
            "],\"displayTimeUnit\":\"ms\","
            "\"otherData\":{\"time_unit\":\"cycles\",\"cycles\":42}}\n");
}

TEST(MetricsExport, GoldenJsonAndCsv) {
  ObsFixture fx(false);
  obs::add("b.counter", 2);
  obs::add("a.counter");
  obs::Registry::instance().set_gauge("g.ratio", 1.25);
  for (std::uint64_t v : {1, 2, 3, 4}) obs::observe("h.lat_ns", v);
  EXPECT_EQ(obs::metrics_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"a.counter\": 1,\n"
            "    \"b.counter\": 2\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g.ratio\": 1.25\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h.lat_ns\": {\"count\": 4, \"sum\": 10, \"max\": 4, "
            "\"p50\": 2, \"p90\": 4, \"p99\": 4}\n"
            "  }\n"
            "}\n");
  EXPECT_EQ(obs::metrics_csv(),
            "kind,name,value\n"
            "counter,a.counter,1\n"
            "counter,b.counter,2\n"
            "gauge,g.ratio,1.25\n"
            "histogram,h.lat_ns.count,4\n"
            "histogram,h.lat_ns.sum,10\n"
            "histogram,h.lat_ns.max,4\n"
            "histogram,h.lat_ns.p50,2\n"
            "histogram,h.lat_ns.p90,4\n"
            "histogram,h.lat_ns.p99,4\n");
}

TEST(TraceJson, EmbedsCountersAndParsesBack) {
  ObsFixture fx(true);
  { obs::Span span("alpha", "stage"); }
  obs::add("hits", 3);
  const obs::json::Value doc = obs::json::parse(obs::trace_json());
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].find("name")->string, "alpha");
  EXPECT_EQ(events->array[0].find("cat")->string, "stage");
  const obs::json::Value* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("counter.hits"), nullptr);
  EXPECT_EQ(other->find("counter.hits")->number, 3.0);
}

// ------------------------------------------------- json parser + schema

TEST(Json, ParsesEscapesAndNumbers) {
  const obs::json::Value v = obs::json::parse(
      "{\"s\":\"a\\n\\\"b\\\"\\u0041\",\"n\":-12.5e1,\"t\":true,"
      "\"nil\":null,\"arr\":[1,2]}");
  EXPECT_EQ(v.find("s")->string, "a\n\"b\"A");
  EXPECT_EQ(v.find("n")->number, -125.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_TRUE(v.find("nil")->is_null());
  ASSERT_EQ(v.find("arr")->array.size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse("{"), Error);
  EXPECT_THROW(obs::json::parse("[1,]"), Error);
  EXPECT_THROW(obs::json::parse("{\"a\":1} x"), Error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), Error);
}

TEST(Schema, AcceptsValidAndReportsViolations) {
  const obs::json::Value schema = obs::json::parse(
      "{\"type\":\"object\",\"required\":[\"ph\"],"
      "\"additionalProperties\":false,"
      "\"properties\":{\"ph\":{\"enum\":[\"X\",\"I\"]},"
      "\"ts\":{\"type\":\"number\",\"minimum\":0}}}");
  EXPECT_TRUE(
      obs::schema::validate(schema, obs::json::parse("{\"ph\":\"X\",\"ts\":1}"))
          .empty());
  // Missing required, bad enum value, negative minimum, unknown member.
  EXPECT_EQ(obs::schema::validate(schema, obs::json::parse("{}")).size(), 1u);
  EXPECT_FALSE(obs::schema::validate(
                   schema, obs::json::parse("{\"ph\":\"Z\"}"))
                   .empty());
  EXPECT_FALSE(obs::schema::validate(
                   schema, obs::json::parse("{\"ph\":\"X\",\"ts\":-1}"))
                   .empty());
  EXPECT_FALSE(obs::schema::validate(
                   schema, obs::json::parse("{\"ph\":\"X\",\"zz\":1}"))
                   .empty());
}

// ------------------------------------------------- latency histograms

TEST(Histogram, BucketSchemeRoundTripsAndTilesWithoutGaps) {
  using H = obs::Histogram;
  // Values below 2*kSub get a bucket each: exact.
  for (std::uint64_t v = 0; v < 2 * H::kSub; ++v) {
    EXPECT_EQ(H::bucket_of(v), v);
    EXPECT_EQ(H::bucket_low(static_cast<unsigned>(v)), v);
    EXPECT_EQ(H::bucket_high(static_cast<unsigned>(v)), v);
  }
  // Both bounds of every bucket map back to it, consecutive buckets
  // tile the value range with no gap, and a log-linear bucket spans at
  // most 1/kSub of its lower bound (the documented +12.5% error).
  for (unsigned b = 0; b < H::kBuckets; ++b) {
    const std::uint64_t low = H::bucket_low(b);
    const std::uint64_t high = H::bucket_high(b);
    ASSERT_LE(low, high);
    EXPECT_EQ(H::bucket_of(low), b);
    EXPECT_EQ(H::bucket_of(high), b);
    if (b + 1 < H::kBuckets) {
      EXPECT_EQ(H::bucket_low(b + 1), high + 1);
    }
    if (b >= 2 * H::kSub) {
      EXPECT_LE(high - low, low / H::kSub);
    }
  }
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), H::kBuckets - 1);
  EXPECT_EQ(H::bucket_high(H::kBuckets - 1), ~std::uint64_t{0});
}

TEST(Histogram, QuantilesWithinDocumentedErrorBound) {
  obs::Histogram hist;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 0x243F6A8885A308D3ULL;  // deterministic LCG walk
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t v = (x >> (x % 48)) | 1;  // spread across octaves
    samples.push_back(v);
    hist.observe(v);
  }
  std::sort(samples.begin(), samples.end());
  const obs::HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const std::uint64_t truth = samples[rank - 1];
    const std::uint64_t est = snap.quantile(q);
    EXPECT_GE(est, truth) << "quantile must not under-report, q=" << q;
    EXPECT_LE(est, truth + truth / obs::Histogram::kSub) << "q=" << q;
  }
  // The maximum is tracked per-sample, so the top quantile is exact.
  EXPECT_EQ(snap.quantile(1.0), samples.back());
  EXPECT_EQ(snap.max, samples.back());
  EXPECT_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0u);
}

TEST(Histogram, ConcurrentObservesMergeExactlyAcrossShards) {
  ObsFixture fx(false);
  obs::Histogram& hist = obs::Registry::instance().histogram("t.merge_ns");
  constexpr std::uint64_t kTasks = 32;
  constexpr std::uint64_t kPerTask = 2000;
  {
    pipeline::ThreadPool pool(8);
    for (std::uint64_t t = 0; t < kTasks; ++t) {
      pool.submit([&hist, t] {
        for (std::uint64_t i = 1; i <= kPerTask; ++i) {
          hist.observe(t * kPerTask + i);
        }
      });
    }
    pool.wait();
  }
  // Quiescent merge is exact: the shards partition the samples, so the
  // summed snapshot equals what one global histogram would have seen.
  const obs::HistogramSnapshot snap = hist.snapshot();
  const std::uint64_t n = kTasks * kPerTask;
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n + 1) / 2);  // samples were 1..n, once each
  EXPECT_EQ(snap.max, n);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

// ---------------------------------------------------- flight recorder

/// Count the dump's trace events whose name matches exactly.
std::size_t count_events(const obs::json::Value& doc, std::string_view name) {
  std::size_t n = 0;
  const obs::json::Value* events = doc.find("traceEvents");
  if (events == nullptr) return 0;
  for (const obs::json::Value& e : events->array) {
    const obs::json::Value* ev_name = e.find("name");
    if (ev_name != nullptr && ev_name->string == name) ++n;
  }
  return n;
}

TEST(FlightRecorder, RingWrapsKeepingNewestAndCountsDropped) {
  ObsFixture fx(false);
  constexpr std::uint64_t kExtra = 100;
  for (std::uint64_t i = 0; i < obs::kFlightCapacity + kExtra; ++i) {
    obs::flight_record(obs::FlightEvent::kInstant, "wrap", 0, 1000 + i);
  }
  const obs::json::Value doc = obs::json::parse(obs::flight_trace_json());
  EXPECT_EQ(count_events(doc, "wrap"), obs::kFlightCapacity);
  // The oldest kExtra events were evicted: the epoch (exported ts 0) is
  // the first *retained* instant, and the newest is capacity-1 later.
  double min_ts = 1e300, max_ts = -1;
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    min_ts = std::min(min_ts, e.find("ts")->number);
    max_ts = std::max(max_ts, e.find("ts")->number);
  }
  EXPECT_EQ(min_ts, 0.0);
  EXPECT_NEAR(max_ts * 1e3, static_cast<double>(obs::kFlightCapacity - 1), 0.5);
  // Per-ring totals land in otherData; ours is the only non-empty ring.
  const obs::json::Value& other = *doc.find("otherData");
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& [key, value] : other.object) {
    if (key.find(".recorded") != std::string::npos) {
      recorded += static_cast<std::uint64_t>(value.number);
    }
    if (key.find(".dropped") != std::string::npos) {
      dropped += static_cast<std::uint64_t>(value.number);
    }
  }
  EXPECT_EQ(recorded, obs::kFlightCapacity + kExtra);
  EXPECT_EQ(dropped, kExtra);
  EXPECT_EQ(doc.find("otherData")->find("flight.capacity")->number,
            static_cast<double>(obs::kFlightCapacity));
}

TEST(FlightRecorder, RendersEndsAsSpansAndOpenBeginsAsInFlight) {
  ObsFixture fx(false);
  obs::flight_record(obs::FlightEvent::kBegin, "outer", 0, 1000);
  obs::flight_record(obs::FlightEvent::kBegin, "inner", 0, 2000);
  obs::flight_record(obs::FlightEvent::kEnd, "inner", 500, 2500);
  obs::flight_record(obs::FlightEvent::kCounter, "hits", 3, 2600);
  // "outer" never ends: it was in flight when the dump was taken.
  const obs::json::Value doc = obs::json::parse(obs::flight_trace_json());
  EXPECT_EQ(count_events(doc, "inner"), 1u);
  EXPECT_EQ(count_events(doc, "outer (in flight)"), 1u);
  EXPECT_EQ(count_events(doc, "hits"), 1u);
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    const std::string& name = e.find("name")->string;
    const std::string& ph = e.find("ph")->string;
    if (name == "inner") {
      EXPECT_EQ(ph, "X");
      EXPECT_EQ(e.find("ts")->number * 1e3, 2000 - 1000);  // start - epoch
      EXPECT_EQ(e.find("dur")->number * 1e3, 500);
    } else if (name == "outer (in flight)") {
      EXPECT_EQ(ph, "I");
    } else if (name == "hits") {
      EXPECT_EQ(ph, "C");
      EXPECT_EQ(e.find("args")->find("delta")->number, 3.0);
    }
  }
}

TEST(FlightRecorder, DisabledRecordingIsInert) {
  ObsFixture fx(false);
  obs::set_flight_enabled(false);
  obs::flight_record(obs::FlightEvent::kInstant, "ghost", 0, 1000);
  { obs::Span span("ghost-span", "test"); }
  obs::set_flight_enabled(true);
  const obs::json::Value doc = obs::json::parse(obs::flight_trace_json());
  EXPECT_EQ(count_events(doc, "ghost"), 0u);
  EXPECT_EQ(count_events(doc, "ghost-span"), 0u);
}

TEST(FlightRecorder, FaultDumpValidatesAgainstCheckedInSchema) {
  ObsFixture fx(false);
  const std::string path =
      testing::TempDir() + "cepic_flight_fault_test.json";
  obs::set_flight_fault_path(path);
  {
    obs::Span span("doomed", "test");
    obs::flight_record_fault("boom");
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "fault dump not written to " << path;
  std::ostringstream dump;
  dump << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(dump.str());
  // The fault instant is stamped (name truncated into the ring slot)
  // and the enclosing span was still open at dump time.
  EXPECT_EQ(count_events(doc, "fault: boom"), 1u);
  EXPECT_EQ(count_events(doc, "doomed (in flight)"), 1u);
  std::ifstream schema_in(CEPIC_TEST_DIR "/../schemas/chrome-trace.schema.json",
                          std::ios::binary);
  ASSERT_TRUE(schema_in.is_open());
  std::ostringstream schema_text;
  schema_text << schema_in.rdbuf();
  const std::vector<std::string> violations =
      obs::schema::validate(obs::json::parse(schema_text.str()), doc);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  std::remove(path.c_str());
}

TEST(FlightRecorder, RecordingDoesNotAllocateAfterRingWarmup) {
#if defined(CEPIC_TEST_ASAN)
  GTEST_SKIP() << "allocation counting is unreliable under ASan";
#else
  ObsFixture fx(false);
  // First event on a thread registers its ring; histograms allocate on
  // first observe of a name. Warm both, then count.
  obs::flight_record(obs::FlightEvent::kInstant, "warm", 0, 1);
  obs::observe("warm.hist_ns", 1);
  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 4 * obs::kFlightCapacity; ++i) {
    obs::flight_record(obs::FlightEvent::kInstant, "steady", 0, i);
    obs::observe("warm.hist_ns", i);
  }
  {
    obs::Span span("steady-span", "test");  // flight begin/end only
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "the always-on observability path must not allocate";
#endif
}

// ---------------------------------------------------- simulator timeline

struct TimelineSums {
  std::uint64_t issue_slices = 0;
  std::uint64_t scoreboard = 0;
  std::uint64_t reg_port = 0;
  std::uint64_t mem_contention = 0;
  std::uint64_t branch_bubbles = 0;
  std::uint64_t fu_slices = 0;
  std::uint64_t nullified_slices = 0;
};

/// Re-derive the per-track cycle sums from an exported timeline JSON —
/// the acceptance property: tracks must account for exactly the cycles
/// SimStats reports.
TimelineSums sum_timeline(const std::string& json_text) {
  TimelineSums sums;
  const obs::json::Value doc = obs::json::parse(json_text);
  const obs::json::Value* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  for (const obs::json::Value& e : events->array) {
    if (e.find("ph") == nullptr || e.find("ph")->string != "X") continue;
    const std::string cat = e.find("cat") ? e.find("cat")->string : "";
    const std::uint64_t dur = e.find("dur")
                                  ? static_cast<std::uint64_t>(
                                        e.find("dur")->number)
                                  : 0;
    if (cat == "issue") {
      ++sums.issue_slices;
    } else if (cat == "fu") {
      ++sums.fu_slices;
    } else if (cat == "nullified") {
      ++sums.nullified_slices;
    } else if (cat == "stall") {
      const std::string name = e.find("name")->string;
      if (name == "scoreboard") sums.scoreboard += dur;
      if (name == "reg-port") sums.reg_port += dur;
      if (name == "mem-contention") sums.mem_contention += dur;
      if (name == "branch-bubble") sums.branch_bubbles += dur;
    }
  }
  return sums;
}

void check_timeline_matches_stats(const ProcessorConfig& config,
                                  ExecTier tier) {
  Program program = compile(kStallProg, config);
  SimOptions options;
  options.exec_tier = tier;
  EpicSimulator sim(std::move(program), {}, options);
  SimTimeline timeline(config);
  sim.set_timeline(&timeline);
  // With a timeline attached the threaded tier pins to the decode tier
  // (per-bundle timeline events are the decode tier's contract) and the
  // stats say so explicitly.
  EXPECT_EQ(sim.active_tier(),
            tier == ExecTier::Threaded ? ExecTier::Decode : tier);
  const SimStats& stats = sim.run();
  EXPECT_EQ(stats.exec_tier,
            tier == ExecTier::Threaded ? ExecTier::Decode : tier);
  EXPECT_EQ(stats.timeline_pinned, tier == ExecTier::Threaded);

  ASSERT_GT(stats.bundles_issued, 0u);
  // Totals accumulated while recording match SimStats field-for-field.
  const SimTimeline::Totals& t = timeline.totals();
  EXPECT_EQ(t.cycles, stats.cycles);
  EXPECT_EQ(t.bundles_issued, stats.bundles_issued);
  EXPECT_EQ(t.stall_scoreboard, stats.stall_scoreboard);
  EXPECT_EQ(t.stall_reg_ports, stats.stall_reg_ports);
  EXPECT_EQ(t.stall_mem_contention, stats.stall_mem_contention);
  EXPECT_EQ(t.branch_bubbles, stats.branch_bubbles);
  EXPECT_EQ(t.ops_executed, stats.ops_executed);
  EXPECT_EQ(t.ops_committed, stats.ops_committed);
  EXPECT_EQ(t.ops_nullified, stats.ops_nullified);

  // And the exported JSON's per-track sums re-derive the same numbers.
  const TimelineSums sums = sum_timeline(timeline.to_chrome_json());
  EXPECT_EQ(sums.issue_slices, stats.bundles_issued);
  EXPECT_EQ(sums.scoreboard, stats.stall_scoreboard);
  EXPECT_EQ(sums.reg_port, stats.stall_reg_ports);
  EXPECT_EQ(sums.mem_contention, stats.stall_mem_contention);
  EXPECT_EQ(sums.branch_bubbles, stats.branch_bubbles);
  EXPECT_EQ(sums.fu_slices + sums.nullified_slices, stats.ops_executed);
  EXPECT_EQ(sums.nullified_slices, stats.ops_nullified);
}

TEST(SimTimeline, ReconcilesWithSimStatsFastPath) {
  check_timeline_matches_stats(ProcessorConfig{}, ExecTier::Decode);
}

TEST(SimTimeline, ReconcilesWithSimStatsInterpretivePath) {
  check_timeline_matches_stats(ProcessorConfig{}, ExecTier::Interp);
}

TEST(SimTimeline, ReconcilesWithSimStatsThreadedTierPinned) {
  // A threaded-tier simulator with a timeline attached runs pinned to
  // the decode tier; the reconciliation (and the explicit marker) is
  // checked inside the helper.
  check_timeline_matches_stats(ProcessorConfig{}, ExecTier::Threaded);
}

TEST(SimTimeline, ReconcilesUnderContentionAndTightPorts) {
  ProcessorConfig config;
  config.unified_memory_contention = true;
  config.reg_port_budget = 4;
  config.forwarding = false;
  check_timeline_matches_stats(config, ExecTier::Decode);
  check_timeline_matches_stats(config, ExecTier::Interp);
  check_timeline_matches_stats(config, ExecTier::Threaded);
}

TEST(SimTimeline, PathsExportIdenticalTimelines) {
  const ProcessorConfig config;
  Program program = compile(kStallProg, config);
  const ExecTier tiers[] = {ExecTier::Decode, ExecTier::Interp,
                            ExecTier::Threaded};
  std::string exported[3];
  for (int pass = 0; pass < 3; ++pass) {
    SimOptions options;
    options.exec_tier = tiers[pass];
    EpicSimulator sim(program, {}, options);
    SimTimeline timeline(config);
    sim.set_timeline(&timeline);
    sim.run();
    exported[pass] = timeline.to_chrome_json();
  }
  EXPECT_EQ(exported[0], exported[1]);
  EXPECT_EQ(exported[0], exported[2]);
}

TEST(SimTimeline, TruncatesWithMarkerAndKeepsTotals) {
  const ProcessorConfig config;
  Program program = compile(kStallProg, config);
  EpicSimulator sim(std::move(program), {}, {});
  SimTimeline timeline(config, /*max_bundles=*/5);
  sim.set_timeline(&timeline);
  const SimStats& stats = sim.run();
  EXPECT_TRUE(timeline.truncated());
  // Totals keep accumulating past the cap.
  EXPECT_EQ(timeline.totals().bundles_issued, stats.bundles_issued);
  EXPECT_EQ(timeline.totals().cycles, stats.cycles);
  const std::string json_text = timeline.to_chrome_json();
  EXPECT_NE(json_text.find("timeline truncated at 5 bundles"),
            std::string::npos);
  const obs::json::Value doc = obs::json::parse(json_text);
  EXPECT_EQ(doc.find("otherData")->find("truncated")->boolean, true);
  // Only the capped bundles contributed slices.
  EXPECT_EQ(sum_timeline(json_text).issue_slices, 5u);
}

TEST(SimTimeline, ValidatesAgainstCheckedInSchema) {
  const ProcessorConfig config;
  Program program = compile(kStallProg, config);
  EpicSimulator sim(std::move(program), {}, {});
  SimTimeline timeline(config);
  sim.set_timeline(&timeline);
  sim.run();
  // Locate the schema relative to the source tree layout used by ctest
  // (tests run from build/tests; the repo root holds schemas/).
  const char* candidates[] = {"../../schemas/chrome-trace.schema.json",
                              "../schemas/chrome-trace.schema.json",
                              "schemas/chrome-trace.schema.json"};
  std::string schema_text;
  for (const char* path : candidates) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      schema_text = ss.str();
      break;
    }
  }
  if (schema_text.empty()) GTEST_SKIP() << "schema file not found from cwd";
  const std::vector<std::string> violations = obs::schema::validate(
      obs::json::parse(schema_text), obs::json::parse(timeline.to_chrome_json()));
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

// ------------------------------------------------ trace truncation marker

TEST(SimTrace, TruncationAppendsExplicitMarker) {
  const ProcessorConfig config;
  Program program = compile(kStallProg, config);
  for (const ExecTier tier :
       {ExecTier::Threaded, ExecTier::Decode, ExecTier::Interp}) {
    SimOptions options;
    options.collect_trace = true;
    options.trace_limit = 10;
    options.exec_tier = tier;
    options.threaded_hot_threshold = 1;
    EpicSimulator sim(program, {}, options);
    const SimStats& stats = sim.run();
    EXPECT_TRUE(stats.trace_truncated);
    ASSERT_EQ(sim.trace().size(), 11u);  // limit entries + the marker
    EXPECT_NE(sim.trace().back().text.find("[trace truncated at 10 entries]"),
              std::string::npos);
    EXPECT_NE(stats.report().find("trace truncated:    yes"),
              std::string::npos);
  }
}

TEST(SimTrace, NoMarkerBelowLimit) {
  const ProcessorConfig config;
  Program program = compile(kQuietProg, config);
  SimOptions options;
  options.collect_trace = true;
  options.trace_limit = 1u << 20;
  EpicSimulator sim(std::move(program), {}, options);
  const SimStats& stats = sim.run();
  EXPECT_FALSE(stats.trace_truncated);
  EXPECT_EQ(sim.trace().size(), stats.bundles_issued);
  EXPECT_EQ(stats.report().find("trace truncated"), std::string::npos);
}

// ------------------------------------------- bundle-width histogram range

TEST(SimStatsHist, SizedForTheConfiguredIssueWidthRange) {
  // The histogram covers 0..kMaxBundleWidth and the simulator asserts
  // the configured width fits; the paper prototype's 4-wide issue is
  // well inside.
  static_assert(SimStats::kMaxBundleWidth >= 4);
  SimStats stats;
  EXPECT_EQ(stats.bundle_width_hist.size(), SimStats::kMaxBundleWidth + 1);
  Program program = compile(kQuietProg, ProcessorConfig{});
  program.config.issue_width =
      static_cast<unsigned>(SimStats::kMaxBundleWidth) + 1;
  EXPECT_THROW(EpicSimulator(std::move(program), {}, {}), Error);
}

// --------------------------------------------- pipeline + registry glue

TEST(PublishStats, FoldsServiceCountersIntoRegistry) {
  ObsFixture fx(false);
  pipeline::Service service;
  (void)service.compile_program(kQuietProg, ProcessorConfig{});
  service.publish_stats();
  const auto counters = obs::Registry::instance().counters();
  const auto get = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [k, v] : counters) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(get("pipeline.frontend_runs"), 1u);
  EXPECT_EQ(get("pipeline.backend_runs"), 1u);
  EXPECT_EQ(get("pipeline.assemble_runs"), 1u);
  EXPECT_EQ(get("pipeline.compiles"), 3u);
  EXPECT_EQ(get("store.program.puts"), 1u);
}

TEST(BatchSpans, QueueWaitRecordedAcrossThreadPool) {
  ObsFixture fx(true);
  pipeline::Options options;
  options.jobs = 2;
  pipeline::Service service(options);
  // The two configs differ only in a simulation-only field, so they
  // share one codegen slice and therefore one compile task.
  std::vector<ProcessorConfig> configs(2);
  configs[1].pipeline_stages = 3;
  const std::vector<pipeline::RunOutcome> outcomes =
      service.run_batch({kStallProg}, configs);
  for (const pipeline::RunOutcome& out : outcomes) EXPECT_TRUE(out.ok);
  std::size_t compile_tasks = 0;
  std::size_t sim_tasks = 0;
  for (const obs::SpanRecord& s : obs::Registry::instance().spans()) {
    if (s.name != "batch.compile" && s.name != "batch.simulate") continue;
    bool has_wait = false;
    for (const obs::EventArg& a : s.args) {
      has_wait = has_wait || a.key == "queue_wait_ns";
    }
    EXPECT_TRUE(has_wait) << s.name << " span lacks queue_wait_ns";
    (s.name == "batch.compile" ? compile_tasks : sim_tasks) += 1;
  }
  // Both configs share one codegen slice -> one compile task; every
  // batch item gets its own simulate task.
  EXPECT_EQ(compile_tasks, 1u);
  EXPECT_EQ(sim_tasks, 2u);
}

// ---------------------------------------------- disabled-mode allocation

TEST(DisabledMode, SimulatorHotLoopDoesNotAllocate) {
#if defined(CEPIC_TEST_ASAN)
  GTEST_SKIP() << "allocation counting is unreliable under ASan";
#else
  ObsFixture fx(false);
  Program program = compile(kQuietProg, ProcessorConfig{});
  // The interpretive reference path allocates per step by design; the
  // two fast tiers must not.
  for (const ExecTier tier : {ExecTier::Threaded, ExecTier::Decode}) {
    SCOPED_TRACE(to_string(tier));
    SimOptions options;
    options.exec_tier = tier;
    // Compile every threaded block during the warm-up run, so the
    // counted run is the steady state.
    options.threaded_hot_threshold = 1;
    EpicSimulator sim(program, {}, options);
    sim.run();  // warm every lazily grown buffer
    sim.reset();
    // A thread's first flight event registers its ring (one allocation,
    // ever); spans feed the ring even with tracing off, so warm it too.
    { obs::Span warm("warm", "test"); }
    g_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    sim.run();
    {
      obs::Span span("disabled", "test");
      span.arg("k", std::uint64_t{1});
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
        << "tracing-disabled simulation must not allocate";
  }
#endif
}

}  // namespace
}  // namespace cepic
