// Cycle-accounting tests: each stall source of the modelled 2-stage
// pipeline (paper §3.2) is pinned down cycle-by-cycle — scoreboard
// (load-use) stalls, register-file-controller port stalls with and
// without forwarding, taken-branch bubbles, unified-memory contention,
// and the ILP statistics.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

using namespace testutil;

EpicSimulator sim_of(std::initializer_list<std::vector<Instruction>> bundles,
                     ProcessorConfig cfg = {}) {
  return EpicSimulator(make_program(cfg, bundles));
}

TEST(SimTiming, OneBundlePerCycleWhenIndependent) {
  auto sim = sim_of({{mov(1, I(1))}, {mov(2, I(2))}, {mov(3, I(3))}, {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().cycles, 4u);
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
}

TEST(SimTiming, AluChainRunsBackToBackViaForwarding) {
  // Single-cycle ALU results are consumable by the next bundle.
  auto sim = sim_of({{mov(1, I(1))},
                     {add(1, R(1), I(1))},
                     {add(1, R(1), I(1))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.gpr(1), 3u);
  EXPECT_EQ(sim.stats().cycles, 4u);
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
}

TEST(SimTiming, LoadUseStallsOneCycle) {
  // Default load latency 2: a consumer in the very next bundle waits one
  // extra cycle.
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                     {ldw(2, 1, 0)},
                     {add(3, R(2), I(1))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 1u);
  EXPECT_EQ(sim.stats().cycles, 5u);
}

TEST(SimTiming, LoadUseWithGapDoesNotStall) {
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                     {ldw(2, 1, 0)},
                     {mov(4, I(9))},  // independent filler bundle
                     {add(3, R(2), I(1))},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
  EXPECT_EQ(sim.stats().cycles, 5u);
}

TEST(SimTiming, ConfigurableLoadLatency) {
  ProcessorConfig cfg;
  cfg.load_latency = 4;
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                     {ldw(2, 1, 0)},
                     {add(3, R(2), I(1))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 3u);
}

TEST(SimTiming, TakenBranchCostsOneBubble) {
  auto sim = sim_of({{pbr(1, 2)},
                     {bru(1)},
                     {halt()}});
  sim.run();
  // pbr @0, bru @1 (+1 bubble), halt @3 -> 4 cycles total.
  EXPECT_EQ(sim.stats().cycles, 4u);
  EXPECT_EQ(sim.stats().branch_bubbles, 1u);
}

TEST(SimTiming, NotTakenBranchHasNoBubble) {
  auto sim = sim_of({{pbr(1, 2), cmpp(Op::CMPP_EQ, 1, 2, I(1), I(2))},
                     {brct(1, 1)},  // p1 false: fall through
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().cycles, 3u);
  EXPECT_EQ(sim.stats().branch_bubbles, 0u);
}

TEST(SimTiming, PortBudgetStallsWideRegisterTraffic) {
  // Without forwarding every GPR read costs a port. A 4-op bundle with
  // 8 distinct register reads + 4 writes = 12 port ops > 8 -> 1 stall.
  ProcessorConfig cfg;
  cfg.forwarding = false;
  auto sim = sim_of({{add(9, R(1), R(2)), add(10, R(3), R(4)),
                      add(11, R(5), R(6)), add(12, R(7), R(8))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_reg_ports, 1u);
  EXPECT_EQ(sim.stats().cycles, 3u);
}

TEST(SimTiming, WiderPortBudgetRemovesStall) {
  ProcessorConfig cfg;
  cfg.forwarding = false;
  cfg.reg_port_budget = 16;
  auto sim = sim_of({{add(9, R(1), R(2)), add(10, R(3), R(4)),
                      add(11, R(5), R(6)), add(12, R(7), R(8))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
  EXPECT_EQ(sim.stats().cycles, 2u);
}

TEST(SimTiming, ForwardingMitigatesPortPressure) {
  // Paper §3.2: "this limitation is mitigated by forwarding of recently
  // calculated results". The consuming bundle reads four values produced
  // in the immediately preceding cycle: all four reads are forwarded,
  // leaving only 4 writes -> no stall.
  ProcessorConfig cfg;  // forwarding on, budget 8
  auto sim = sim_of({{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                     {add(5, R(1), R(2)), add(6, R(3), R(4)),
                      add(7, R(1), R(3)), add(8, R(2), R(4))},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
  EXPECT_EQ(sim.stats().cycles, 3u);

  // Same program with forwarding disabled: 8 reads + 4 writes = 12 > 8.
  ProcessorConfig no_fwd;
  no_fwd.forwarding = false;
  auto sim2 = sim_of({{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                      {add(5, R(1), R(2)), add(6, R(3), R(4)),
                       add(7, R(1), R(3)), add(8, R(2), R(4))},
                      {halt()}},
                     no_fwd);
  sim2.run();
  EXPECT_EQ(sim2.stats().stall_reg_ports, 1u);
  EXPECT_EQ(sim2.stats().cycles, 4u);
}

TEST(SimTiming, StaleReadsCostPortsEvenWithForwarding) {
  // Values produced long ago come from the register file, not the
  // forwarding network.
  ProcessorConfig cfg;  // budget 8, forwarding on
  auto sim = sim_of({{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                     {mov(9, I(9))},
                     {mov(10, I(10))},
                     {add(5, R(1), R(2)), add(6, R(3), R(4)),
                      add(7, R(1), R(3)), add(8, R(2), R(4))},
                     {halt()}},
                    cfg);
  sim.run();
  // 8 stale reads + 4 writes = 12 ports -> 1 stall.
  EXPECT_EQ(sim.stats().stall_reg_ports, 1u);
}

TEST(SimTiming, LiteralsAndR0CostNoPorts) {
  ProcessorConfig cfg;
  cfg.forwarding = false;
  auto sim = sim_of({{add(9, R(0), I(1)), add(10, R(0), I(2)),
                      add(11, R(0), I(3)), add(12, R(0), I(4))},
                     {halt()}},
                    cfg);
  sim.run();
  // Only the 4 writes count.
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
}

TEST(SimTiming, UnifiedMemoryContentionAddsCyclePerMemBundle) {
  ProcessorConfig cfg;
  cfg.unified_memory_contention = true;
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                     {stw(1, 1, 0)},
                     {ldw(2, 1, 0)},
                     {halt()}},
                    cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_mem_contention, 2u);
  // mov @0, stw @1(+1), ldw @3(+1), halt @5 -> 6 cycles.
  EXPECT_EQ(sim.stats().cycles, 6u);
}

TEST(SimTiming, OutDoesNotCountAsMemoryContention) {
  ProcessorConfig cfg;
  cfg.unified_memory_contention = true;
  auto sim = sim_of({{out(I(1))}, {halt()}}, cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_mem_contention, 0u);
}

TEST(SimTiming, IlpStatisticsCountUsefulOps) {
  auto sim = sim_of({{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)), mov(4, I(4))},
                     {halt()}});
  sim.run();
  const SimStats& st = sim.stats();
  EXPECT_EQ(st.ops_executed, 5u);  // 4 movs + halt
  EXPECT_EQ(st.nops, 3u);          // halt bundle padding
  EXPECT_EQ(st.bundle_width_hist[4], 1u);
  EXPECT_EQ(st.bundle_width_hist[1], 1u);
  EXPECT_DOUBLE_EQ(st.ilp(), 5.0 / 2.0);
}

TEST(SimTiming, ScoreboardCoversPredicates) {
  // The guard predicate written by CMPP in the previous bundle is ready
  // for the next bundle (latency 1): no stall.
  auto sim = sim_of({{cmpp(Op::CMPP_EQ, 1, 2, I(1), I(1))},
                     {add(3, I(1), I(1), /*pred=*/1)},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
  EXPECT_EQ(sim.gpr(3), 2u);
}

TEST(SimTiming, ScoreboardCoversBtrs) {
  auto sim = sim_of({{pbr(1, 2)}, {bru(1)}, {halt()}, {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 0u);
}

// ---- §3.2 port-budget fixed-point corners. Each case also runs the
// interpretive path (ExecTier::Interp) and pins the two stats reports
// equal, so the corner is exercised on both implementations. --

SimStats interpretive_stats(
    std::initializer_list<std::vector<Instruction>> bundles,
    const ProcessorConfig& cfg) {
  SimOptions options;
  options.exec_tier = ExecTier::Interp;
  EpicSimulator sim(make_program(cfg, bundles), {}, options);
  sim.run();
  return sim.stats();
}

TEST(SimTiming, R0OnlyReadsNeedNoPortsAtMinimumBudget) {
  ProcessorConfig cfg;
  cfg.forwarding = false;
  cfg.reg_port_budget = 2;  // the minimum the config allows
  const auto prog = {
      std::vector<Instruction>{add(1, R(0), R(0)), add(2, R(0), R(0))},
      std::vector<Instruction>{halt()}};
  auto sim = sim_of(prog, cfg);
  sim.run();
  // r0 is hardwired and costs no read port; the two writes fit the
  // budget of 2 exactly. (Charging the four r0 reads would stall 2.)
  EXPECT_EQ(sim.stats().stall_reg_ports, 0u);
  EXPECT_EQ(sim.stats().cycles, 2u);
  EXPECT_EQ(sim.stats(), interpretive_stats(prog, cfg));
}

TEST(SimTiming, StoreValueReadsCostPorts) {
  // STW reads both its base (src1) and its value (the dest1-as-source
  // field); both must be charged to the port budget.
  ProcessorConfig cfg;
  cfg.forwarding = false;
  cfg.reg_port_budget = 4;
  const auto prog = {
      std::vector<Instruction>{mov(1, I(static_cast<std::int32_t>(kDataBase))),
                               mov(2, I(1)), mov(3, I(2)), mov(4, I(3))},
      std::vector<Instruction>{stw(2, 1, 0), stw(3, 1, 4), stw(4, 1, 8)},
      std::vector<Instruction>{halt()}};
  auto sim = sim_of(prog, cfg);
  sim.run();
  // 3 base reads + 3 value reads = 6 ports, no writes: ceil(6/4)-1 = 1.
  EXPECT_EQ(sim.stats().stall_reg_ports, 1u);
  EXPECT_EQ(sim.stats(), interpretive_stats(prog, cfg));
}

TEST(SimTiming, MixedLiteralRegisterTrafficWithoutForwarding) {
  // Literal operands never touch the register file; with forwarding off
  // every register read counts, including duplicates.
  ProcessorConfig cfg;
  cfg.forwarding = false;
  cfg.reg_port_budget = 4;
  const auto prog = {
      std::vector<Instruction>{mov(1, I(1)), mov(2, I(2))},
      std::vector<Instruction>{add(3, R(1), I(5)), add(4, R(2), I(6)),
                               add(5, R(1), R(2))},
      std::vector<Instruction>{halt()}};
  auto sim = sim_of(prog, cfg);
  sim.run();
  // Reads r1,r2,r1,r2 (4) + 3 writes = 7 ports: ceil(7/4)-1 = 1 stall.
  EXPECT_EQ(sim.stats().stall_reg_ports, 1u);
  EXPECT_EQ(sim.stats(), interpretive_stats(prog, cfg));
}

TEST(SimTiming, DelayedIssueConvertsForwardedReadsIntoPortReads) {
  // The fixed point proper: at the scoreboard issue cycle the r1..r4
  // reads are forwarded, leaving 4 stale reads (r9..r12) + 4 writes =
  // 8 ports -> 1 stall at budget 5. But delaying issue by that stall
  // un-forwards r1..r4: 8 reads + 4 writes = 12 ports -> 2 stalls,
  // which is where the iteration converges. A single-pass port count
  // would report 1.
  ProcessorConfig cfg;
  cfg.reg_port_budget = 5;  // forwarding on (default)
  const auto prog = {
      std::vector<Instruction>{mov(9, I(9)), mov(10, I(10)), mov(11, I(11)),
                               mov(12, I(12))},
      std::vector<Instruction>{mov(1, I(1)), mov(2, I(2)), mov(3, I(3)),
                               mov(4, I(4))},
      std::vector<Instruction>{add(5, R(1), R(9)), add(6, R(2), R(10)),
                               add(7, R(3), R(11)), add(8, R(4), R(12))},
      std::vector<Instruction>{halt()}};
  auto sim = sim_of(prog, cfg);
  sim.run();
  EXPECT_EQ(sim.stats().stall_reg_ports, 2u);
  EXPECT_EQ(sim.stats().cycles, 6u);
  EXPECT_EQ(sim.stats(), interpretive_stats(prog, cfg));
}

TEST(SimTiming, StoreValueIsScoreboarded) {
  // STW reads its value through the DEST1 field; a just-loaded value
  // must stall the store by one cycle.
  auto sim = sim_of({{mov(1, I(static_cast<std::int32_t>(kDataBase)))},
                     {ldw(2, 1, 0)},
                     {stw(2, 1, 4)},
                     {halt()}});
  sim.run();
  EXPECT_EQ(sim.stats().stall_scoreboard, 1u);
}

}  // namespace
}  // namespace cepic
