// Optimiser tests: per-pass unit checks plus the semantics-preservation
// property — every pass combination must leave interpreter-observable
// behaviour (output stream + return value) unchanged on a corpus of
// MiniC programs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic {
namespace {

using ir::IrOp;

ir::Module compiled(std::string_view src) {
  return minic::compile_to_ir(src);
}

std::size_t count_insts(const ir::Function& fn) {
  std::size_t n = 0;
  for (const auto& b : fn.blocks) n += b.insts.size();
  return n;
}

std::size_t count_op(const ir::Function& fn, IrOp op) {
  std::size_t n = 0;
  for (const auto& b : fn.blocks) {
    for (const auto& i : b.insts) n += i.op == op ? 1 : 0;
  }
  return n;
}

std::size_t count_guarded(const ir::Function& fn) {
  std::size_t n = 0;
  for (const auto& b : fn.blocks) {
    for (const auto& i : b.insts) n += i.guard != ir::kNoVReg ? 1 : 0;
  }
  return n;
}

TEST(OptConstFold, FoldsConstantExpressions) {
  ir::Module m = compiled("int main() { return (2 + 3) * 4; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_constfold(f);
  opt::pass_copy_propagate(f);
  opt::pass_constfold(f);
  // After folding, no Mul remains.
  EXPECT_EQ(count_op(f, IrOp::Mul), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 20u);
}

TEST(OptConstFold, StrengthReducesMulByPowerOfTwo) {
  ir::Module m = compiled("int f(int x){ return x * 8; }"
                          "int main(){ return f(3); }");
  ir::Function& f = *m.find_function("f");
  opt::pass_constfold(f);
  EXPECT_EQ(count_op(f, IrOp::Mul), 0u);
  EXPECT_GE(count_op(f, IrOp::Shl), 1u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 24u);
}

TEST(OptConstFold, AlgebraicIdentities) {
  ir::Module m = compiled(
      "int main(){ int x = 9; return (x + 0) * 1 + (x & -1) + (x ^ 0); }");
  ir::Function& f = *m.find_function("main");
  for (int i = 0; i < 3; ++i) {
    opt::pass_copy_propagate(f);
    opt::pass_constfold(f);
    opt::pass_dce(f);
  }
  EXPECT_EQ(count_op(f, IrOp::Mul), 0u);
  EXPECT_EQ(count_op(f, IrOp::And), 0u);
  EXPECT_EQ(count_op(f, IrOp::Xor), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 27u);
}

TEST(OptConstFold, FoldsConstantBranches) {
  ir::Module m = compiled("int main(){ if (1 < 2) return 7; return 8; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_constfold(f);   // folds the compare to 1
  opt::pass_copy_propagate(f);
  opt::pass_constfold(f);   // folds the condbr
  EXPECT_EQ(count_op(f, IrOp::CondBr), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 7u);
}

TEST(OptCopyProp, EliminatesCopyChains) {
  ir::Module m = compiled(
      "int main(){ int a = 5; int b = a; int c = b; return c + c; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_copy_propagate(f);
  opt::pass_constfold(f);
  opt::pass_dce(f);
  // The adds' operands should be immediates after propagation.
  EXPECT_EQ(ir::Interpreter(m).run().ret, 10u);
  EXPECT_LE(count_insts(f), 3u);
}

TEST(OptCse, ReusesRepeatedComputation) {
  ir::Module m = compiled(
      "int main(){ int a = 6; int b = 7;"
      " return (a * b) + (a * b) + (a * b); }");
  ir::Function& f = *m.find_function("main");
  opt::pass_copy_propagate(f);
  opt::pass_cse(f);
  EXPECT_EQ(count_op(f, IrOp::Mul), 1u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 126u);
}

TEST(OptCse, LoadCseInvalidatedByStore) {
  ir::Module m = compiled(
      "int g[2] = {5, 0};\n"
      "int main(){ int a = g[0]; g[0] = 9; int b = g[0]; return a + b; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_copy_propagate(f);
  opt::pass_cse(f);
  // Both loads must survive (the store intervenes).
  EXPECT_EQ(count_op(f, IrOp::LoadW), 2u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 14u);
}

TEST(OptCse, GlobalAddrIsCsed) {
  ir::Module m = compiled(
      "int g[4];\n"
      "int main(){ g[0] = 1; g[1] = 2; g[2] = 3; return g[0]; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_cse(f);
  EXPECT_EQ(count_op(f, IrOp::GlobalAddr), 1u);
}

TEST(OptDce, RemovesDeadComputation) {
  ir::Module m = compiled(
      "int main(){ int unused = 3 * 4 + 5; int x = 2; return x; }");
  ir::Function& f = *m.find_function("main");
  const std::size_t before = count_insts(f);
  opt::pass_dce(f);
  EXPECT_LT(count_insts(f), before);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 2u);
}

TEST(OptDce, KeepsSideEffects) {
  ir::Module m = compiled(
      "int g;\n"
      "int main(){ g = 5; out(1); return 0; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_dce(f);
  EXPECT_EQ(count_op(f, IrOp::StoreW), 1u);
  EXPECT_EQ(count_op(f, IrOp::Out), 1u);
}

TEST(OptDce, LoopCarriedValuesStayLive) {
  ir::Module m = compiled(
      "int main(){ int s = 0;"
      " for (int i = 0; i < 5; i++) s += i; return s; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_dce(f);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 10u);
}

TEST(OptSimplifyCfg, MergesStraightLineChains) {
  ir::Module m = compiled("int main(){ int a = 1; { int b = 2; a = b; } return a; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_simplify_cfg(f);
  EXPECT_EQ(f.blocks.size(), 1u);
}

TEST(OptSimplifyCfg, RemovesUnreachableAfterConstantBranch) {
  ir::Module m = compiled("int main(){ if (0) { out(9); } return 1; }");
  ir::Function& f = *m.find_function("main");
  opt::pass_constfold(f);
  opt::pass_simplify_cfg(f);
  EXPECT_EQ(count_op(f, IrOp::Out), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 1u);
}

TEST(OptInline, InlinesLeafCalls) {
  ir::Module m = compiled(
      "int sq(int x) { return x * x; }\n"
      "int main(){ return sq(3) + sq(4); }");
  opt::pass_inline(m, 48);
  const ir::Function& f = *m.find_function("main");
  EXPECT_EQ(count_op(f, IrOp::Call), 0u);
  EXPECT_EQ(ir::Interpreter(m).run("main").ret, 25u);
}

TEST(OptInline, SkipsRecursiveAndLargeCallees) {
  ir::Module m = compiled(
      "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n"
      "int main(){ return fact(5); }");
  opt::pass_inline(m, 48);
  const ir::Function& f = *m.find_function("main");
  EXPECT_EQ(count_op(f, IrOp::Call), 1u);  // recursive callee untouched
  EXPECT_EQ(ir::Interpreter(m).run().ret, 120u);
}

TEST(OptInline, InlinedFramesDoNotCollide) {
  ir::Module m = compiled(
      "int pick(int a[], int i) { return a[i]; }\n"
      "int use() { int t[2] = {11, 22}; return t[0]; }\n"
      "int main(){ int u[2] = {33, 44}; return use() + pick(u, 1); }");
  opt::pass_inline(m, 48);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 55u);
}

TEST(OptIfConvert, ConvertsTriangle) {
  ir::Module m = compiled(
      "int main(){ int x = 3; if (x > 2) x = 9; return x; }");
  ir::Function& f = *m.find_function("main");
  const bool changed = opt::pass_if_convert(f, 10);
  EXPECT_TRUE(changed);
  EXPECT_GE(count_guarded(f), 1u);
  opt::pass_simplify_cfg(f);
  EXPECT_EQ(count_op(f, IrOp::CondBr), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 9u);
}

TEST(OptIfConvert, ConvertsDiamond) {
  ir::Module m = compiled(
      "int main(){ int x = 3; int y; if (x > 2) y = 1; else y = 2;"
      " return y; }");
  ir::Function& f = *m.find_function("main");
  EXPECT_TRUE(opt::pass_if_convert(f, 10));
  opt::pass_simplify_cfg(f);
  EXPECT_EQ(count_op(f, IrOp::CondBr), 0u);
  EXPECT_EQ(ir::Interpreter(m).run().ret, 1u);
}

TEST(OptIfConvert, GuardedStoreSemantics) {
  // Dijkstra's relax step: a store under a condition.
  ir::Module m = compiled(
      "int d[2] = {100, 5};\n"
      "int main(){ int alt = 7;"
      " if (alt < d[0]) d[0] = alt;"
      " if (alt < d[1]) d[1] = alt;"
      " return d[0] * 100 + d[1]; }");
  for (ir::Function& f : m.functions) {
    opt::pass_if_convert(f, 10);
    opt::pass_simplify_cfg(f);
  }
  EXPECT_EQ(ir::Interpreter(m).run().ret, 705u);
}

TEST(OptIfConvert, SkipsCallsAndBigArms) {
  ir::Module m = compiled(
      "int g() { return 1; }\n"
      "int main(){ int x = 0; if (x) x = g(); return x; }");
  ir::Function& f = *m.find_function("main");
  EXPECT_FALSE(opt::pass_if_convert(f, 10));
}

TEST(OptPipeline, FullPipelinePreservesOutput) {
  const char* src =
      "int tab[8] = {3, 1, 4, 1, 5, 9, 2, 6};\n"
      "int sum(int a[], int n) { int s = 0;"
      "  for (int i = 0; i < n; i++) s += a[i]; return s; }\n"
      "int maxv(int a[], int n) { int m = a[0];"
      "  for (int i = 1; i < n; i++) if (a[i] > m) m = a[i]; return m; }\n"
      "int main() {"
      "  out(sum(tab, 8)); out(maxv(tab, 8));"
      "  int acc = 0;"
      "  for (int i = 0; i < 8; i++) {"
      "    if (tab[i] % 2 == 0) acc += tab[i] * 3; else acc -= tab[i];"
      "  }"
      "  out(acc); return acc; }";
  ir::Module plain = compiled(src);
  ir::Module optimized = compiled(src);
  opt::optimize(optimized);

  const auto r0 = ir::Interpreter(plain).run();
  const auto r1 = ir::Interpreter(optimized).run();
  EXPECT_EQ(r0.output, r1.output);
  EXPECT_EQ(r0.ret, r1.ret);
  // And it should genuinely shrink the program.
  EXPECT_LT(count_insts(*optimized.find_function("main")),
            count_insts(*plain.find_function("main")) +
                count_insts(*plain.find_function("sum")) +
                count_insts(*plain.find_function("maxv")));
}

// ---- property sweep: pass combinations preserve semantics on a corpus ----

struct PassCombo {
  const char* name;
  opt::OptOptions options;
};

class OptProperty : public ::testing::TestWithParam<PassCombo> {};

const char* kCorpus[] = {
    // Branch-heavy with guarded stores.
    "int d[5] = {9, 3, 7, 1, 5};\n"
    "int main(){ int best = 1000; int bi = -1;"
    " for (int i = 0; i < 5; i++) {"
    "   if (d[i] < best) { best = d[i]; bi = i; } }"
    " out(best); out(bi); return best * 10 + bi; }",
    // Nested calls + recursion.
    "int add3(int a, int b, int c) { return a + b + c; }\n"
    "int tri(int n) { if (n <= 0) return 0; return n + tri(n - 1); }\n"
    "int main(){ out(add3(1, 2, 3)); out(tri(10)); return tri(4); }",
    // Bit tricks: rotations, masks, xorshift.
    "int main(){ int s = 0x12345678; int acc = 0;"
    " for (int i = 0; i < 20; i++) {"
    "   s ^= s << 13; s ^= s >>> 17; s ^= s << 5;"
    "   acc ^= (s >>> (i % 13)) + (s << (i % 7)); }"
    " out(acc); return acc & 0xFFFF; }",
    // Local arrays, do-while, ternary.
    "int main(){ int a[6]; int i = 0;"
    " do { a[i] = i % 2 ? -i : i * i; i++; } while (i < 6);"
    " int s = 0; for (int j = 0; j < 6; j++) s += a[j];"
    " out(s); return s; }",
    // Short-circuit + division corner cases.
    "int safe_div(int a, int b) { return b != 0 && a > 0 ? a / b : -1; }\n"
    "int main(){ out(safe_div(10, 3)); out(safe_div(10, 0));"
    " out(safe_div(-5, 2)); return 0; }",
    // min/max/abs builtins and compound assignment soup.
    "int main(){ int x = -42; int y = 17;"
    " x += y; x *= 3; x -= min(x, y); x |= max(1, abs(x) % 13);"
    " out(x); return x; }",
};

TEST_P(OptProperty, SemanticsPreservedOnCorpus) {
  const opt::OptOptions& options = GetParam().options;
  for (const char* src : kCorpus) {
    ir::Module plain = compiled(src);
    ir::Module optimized = compiled(src);
    opt::optimize(optimized, options);
    const auto r0 = ir::Interpreter(plain).run();
    const auto r1 = ir::Interpreter(optimized).run();
    EXPECT_EQ(r0.output, r1.output) << src;
    EXPECT_EQ(r0.ret, r1.ret) << src;
  }
}

opt::OptOptions combo(bool fold, bool cp, bool cse, bool dce, bool cfg,
                      bool inl, bool ifc, bool licm = false) {
  opt::OptOptions o;
  o.licm = licm;
  o.fold = fold;
  o.copy_propagate = cp;
  o.cse = cse;
  o.dce = dce;
  o.simplify_cfg = cfg;
  o.inline_calls = inl;
  o.if_convert = ifc;
  return o;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, OptProperty,
    ::testing::Values(
        PassCombo{"all", combo(true, true, true, true, true, true, true)},
        PassCombo{"no_ifconvert",
                  combo(true, true, true, true, true, true, false)},
        PassCombo{"no_inline",
                  combo(true, true, true, true, true, false, true)},
        PassCombo{"fold_only",
                  combo(true, false, false, false, false, false, false)},
        PassCombo{"cse_dce",
                  combo(false, false, true, true, false, false, false)},
        PassCombo{"ifconvert_only",
                  combo(false, false, false, false, true, false, true)},
        PassCombo{"cfg_only",
                  combo(false, false, false, false, true, false, false)},
        PassCombo{"all_plus_licm",
                  combo(true, true, true, true, true, true, true, true)},
        PassCombo{"licm_only",
                  combo(false, false, false, false, true, false, false,
                        true)}),
    [](const ::testing::TestParamInfo<PassCombo>& info) {
      return info.param.name;
    });

// -------------------------------------------- per-pass IR verification

const char* kVerifySrc =
    "int helper(int x) { return x * 3 + 1; }\n"
    "int main() {\n"
    "  int s = 0;\n"
    "  for (int i = 0; i < 20; i++) {\n"
    "    if (i % 2 == 0) s += helper(i); else s -= i;\n"
    "  }\n"
    "  out(s); return s & 0xFF;\n}\n";

TEST(OptVerifyEachPass, AcceptsTheFullPipelineAndChangesNothing) {
  ir::Module plain = compiled(kVerifySrc);
  opt::optimize(plain);

  ir::Module checked = compiled(kVerifySrc);
  opt::OptOptions options;
  options.verify_each_pass = true;
  ASSERT_NO_THROW(opt::optimize(checked, options));
  // A pure check: the optimised IR is byte-identical with it on or off.
  EXPECT_EQ(ir::to_string(checked), ir::to_string(plain));
}

TEST(OptVerifyEachPass, EnvironmentVariableEnablesIt) {
  // CEPIC_VERIFY_IR reaches optimize() without any options plumbing
  // (the debug flow for tools and benches).
  ir::Module m = compiled(kVerifySrc);
  ASSERT_EQ(setenv("CEPIC_VERIFY_IR", "1", 1), 0);
  ASSERT_NO_THROW(opt::optimize(m));
  ASSERT_EQ(unsetenv("CEPIC_VERIFY_IR"), 0);
}

}  // namespace
}  // namespace cepic
