// The unified pipeline API (src/pipeline): the options partition
// (codegen_slice), content-addressed store hits that are byte-identical
// to cold compiles, artifact sharing across simulation-only config
// variants, store version isolation, the batch scheduler's determinism,
// and the zero-recompilation warm path that the CI cache-correctness
// job checks end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "explore/explore.hpp"
#include "frontend/irgen.hpp"
#include "opt/opt.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/store.hpp"
#include "serial/serial.hpp"
#include "support/bits.hpp"

namespace cepic::pipeline {
namespace {

const char* kProg =
    "int main() {"
    "  int acc = 0;"
    "  for (int i = 1; i <= 30; i++) acc += i * i - (i << 1);"
    "  out(acc); return acc & 0xFF; }";

const char* kProg2 =
    "int main() {"
    "  int s = 1;"
    "  for (int i = 0; i < 12; i++) { s = s * 3 + i; out(s & 0xFFFF); }"
    "  return s & 0xFF; }";

/// A fresh, empty scratch directory under the gtest temp dir.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pipeline_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A config that differs from `base` only in simulation-visible fields.
ProcessorConfig sim_only_variant(ProcessorConfig base) {
  base.pipeline_stages = base.pipeline_stages == 2 ? 3 : 2;
  base.unified_memory_contention = !base.unified_memory_contention;
  return base;
}

// ------------------------------------------------------- the partition

TEST(CodegenSlice, ResetsExactlyTheSimulationOnlyFields) {
  ProcessorConfig cfg;
  cfg.num_alus = 3;
  cfg.reg_port_budget = 6;
  cfg.forwarding = false;
  cfg.load_latency = 2;
  cfg.pipeline_stages = 4;
  cfg.unified_memory_contention = true;

  const ProcessorConfig slice = Service::codegen_slice(cfg);
  const ProcessorConfig defaults;
  // Simulation-only fields are reset...
  EXPECT_EQ(slice.pipeline_stages, defaults.pipeline_stages);
  EXPECT_EQ(slice.unified_memory_contention,
            defaults.unified_memory_contention);
  // ...and everything the backend reads is preserved.
  EXPECT_EQ(slice.num_alus, 3u);
  EXPECT_EQ(slice.reg_port_budget, 6u);
  EXPECT_FALSE(slice.forwarding);
  EXPECT_EQ(slice.load_latency, 2u);
}

TEST(CodegenSlice, SimOnlyVariantsShareOneSliceDistinctBackendFieldsDoNot) {
  ProcessorConfig a;
  a.num_alus = 2;
  const ProcessorConfig b = sim_only_variant(a);
  EXPECT_EQ(Service::codegen_slice(a).stable_hash(),
            Service::codegen_slice(b).stable_hash());

  ProcessorConfig c = a;
  c.forwarding = !c.forwarding;  // scheduler input => distinct slice
  EXPECT_NE(Service::codegen_slice(a).stable_hash(),
            Service::codegen_slice(c).stable_hash());
}

/// Pins the partition against the backend itself: compiling with the
/// full config (sim-only fields varied) must produce the same assembly
/// as compiling with the slice. If the backend ever starts reading
/// pipeline_stages or unified_memory_contention, this fails and
/// codegen_slice() must move the field to the keyed side.
TEST(CodegenSlice, BackendOutputIsInvariantUnderSimOnlyFields) {
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  const ProcessorConfig variant = sim_only_variant(cfg);

  ir::Module module = minic::compile_to_ir(kProg);
  opt::optimize(module, {});
  const std::string direct =
      backend::compile_ir_to_asm(module, variant, {});
  const std::string sliced =
      backend::compile_ir_to_asm(module, Service::codegen_slice(variant), {});
  EXPECT_EQ(direct, sliced);

  Service service;
  EXPECT_EQ(service.compile_asm(kProg, variant), direct);
}

// ------------------------------------------------------------- sharing

TEST(Service, SimOnlyVariantsCompileOnceAndMatchTheDeprecatedDriver) {
  ProcessorConfig base;
  base.num_alus = 2;
  const std::vector<ProcessorConfig> configs{base, sim_only_variant(base)};

  Service service;
  const std::vector<RunOutcome> outcomes =
      service.run_batch({kProg}, configs);
  ASSERT_EQ(outcomes.size(), 2u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.frontend_runs, 1u);
  EXPECT_EQ(stats.backend_runs, 1u);   // one compile serves both points
  EXPECT_EQ(stats.assemble_runs, 1u);
  EXPECT_EQ(stats.simulations, 2u);    // but each point is simulated

  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EpicSimulator sim = pipeline::run_once(kProg, configs[i]);
    EXPECT_EQ(outcomes[i].cycles, sim.stats().cycles) << i;
    EXPECT_EQ(outcomes[i].output_hash, fnv1a64_words(sim.output())) << i;
    EXPECT_EQ(outcomes[i].ret, sim.gpr(3)) << i;
  }
  // The variant changes simulated timing, so sharing the compiled
  // program must not have collapsed the simulations.
  EXPECT_NE(outcomes[0].cycles, outcomes[1].cycles);
}

TEST(Service, FrontendRunsOnceAcrossAluConfigs) {
  Service service;
  for (unsigned alus = 1; alus <= 4; ++alus) {
    ProcessorConfig cfg;
    cfg.num_alus = alus;
    cfg.issue_width = alus;
    (void)service.compile_program(kProg, cfg);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.frontend_runs, 1u);
  EXPECT_EQ(stats.backend_runs, 4u);  // each ALU count is real codegen
}

TEST(Service, CompiledProgramCarriesTheFullRequestedConfig) {
  ProcessorConfig cfg;
  cfg.pipeline_stages = 4;
  cfg.unified_memory_contention = true;

  Service service;
  const Program cold = service.compile_program(kProg, cfg);
  EXPECT_EQ(cold.config.pipeline_stages, 4u);
  EXPECT_TRUE(cold.config.unified_memory_contention);
  // Second request is served from the in-memory store; still re-stamped.
  const Program warm = service.compile_program(kProg, cfg);
  EXPECT_EQ(warm.config.pipeline_stages, 4u);
  EXPECT_EQ(serial::encode_program(cold), serial::encode_program(warm));
}

// ------------------------------------------------------ persistent store

TEST(Service, StoreHitsAcrossProcessesAreByteIdenticalToColdCompiles) {
  const std::string dir = scratch_dir("store_bytes");
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  const ProcessorConfig variant = sim_only_variant(cfg);

  Options options;
  options.store_dir = dir;
  std::vector<std::uint8_t> cold_bytes;
  std::string cold_asm;
  {
    Service cold(options);
    cold_bytes = serial::encode_program(cold.compile_program(kProg, cfg));
    cold_asm = cold.compile_asm(kProg, cfg);
    EXPECT_GE(cold.stats().compiles(), 1u);
  }
  // A fresh Service (fresh process, in effect) with the same store root
  // must serve everything from disk without running any compile stage.
  Service warm(options);
  const CompileArtifacts served = warm.compile(kProg, variant);
  EXPECT_TRUE(served.asm_from_store);
  EXPECT_TRUE(served.program_from_store);
  EXPECT_EQ(served.asm_text, cold_asm);

  // Byte-identical Program: the stored blob is canonicalised to the
  // codegen slice and re-stamped, so serialising with the *original*
  // config must reproduce the cold bytes exactly.
  Program restamped = served.program;
  restamped.config = cfg;
  EXPECT_EQ(serial::encode_program(restamped), cold_bytes);

  const ServiceStats stats = warm.stats();
  EXPECT_EQ(stats.backend_runs, 0u);
  EXPECT_EQ(stats.assemble_runs, 0u);
  EXPECT_GE(stats.store.program.hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Store, VersionTagIsolatesIncompatibleToolchains) {
  const std::string dir = scratch_dir("store_version");
  const ArtifactId id{Granularity::kAsm, 42};
  {
    Store a(dir, "vA");
    a.put(id, "blob-from-vA");
  }
  Store b(dir, "vB");
  std::string blob;
  EXPECT_FALSE(b.get(id, blob));  // invisible across tags
  Store a2(dir, "vA");
  ASSERT_TRUE(a2.get(id, blob));  // durable within a tag
  EXPECT_EQ(blob, "blob-from-vA");
  std::filesystem::remove_all(dir);
}

TEST(Store, RejectsOldLayoutAndForeignDirectories) {
  // A pre-PR7 store put granularity directories directly under the
  // version directory the caller pointed at; passing such a directory
  // as the root now fails fast instead of silently nesting a new store.
  const std::string old_layout = scratch_dir("store_old_layout");
  std::filesystem::create_directories(old_layout + "/asm");
  EXPECT_THROW(Store(old_layout, "vA"), Error);

  // A versioned directory that exists but carries no format marker was
  // not written by this toolchain — refuse to adopt it.
  const std::string foreign = scratch_dir("store_foreign");
  std::filesystem::create_directories(foreign + "/vA");
  EXPECT_THROW(Store(foreign, "vA"), Error);

  std::filesystem::remove_all(old_layout);
  std::filesystem::remove_all(foreign);
}

TEST(Store, ArtifactIdFormatting) {
  const ArtifactId id{Granularity::kProgram, 0xdeadbeefu};
  EXPECT_EQ(to_string(id), "program:00000000deadbeef");
  EXPECT_EQ(to_string(Granularity::kIr), std::string("ir"));
  EXPECT_EQ(ArtifactId{}, (ArtifactId{Granularity::kIr, 0}));
}

// ------------------------------------------------------ batch scheduler

TEST(Service, WarmBatchRunsZeroCompilesAndZeroSimulations) {
  const std::string dir = scratch_dir("warm_batch");
  const std::vector<std::string> sources{kProg, kProg2};
  std::vector<ProcessorConfig> configs;
  for (unsigned alus = 1; alus <= 2; ++alus) {
    for (unsigned stages = 2; stages <= 3; ++stages) {
      ProcessorConfig cfg;
      cfg.num_alus = alus;
      cfg.pipeline_stages = stages;
      configs.push_back(cfg);
    }
  }

  Options options;
  options.store_dir = dir;
  options.jobs = 1;
  std::vector<RunOutcome> cold;
  {
    Service service(options);
    cold = service.run_batch(sources, configs);
    // 2 sources x 2 ALU slices: stage variants share their compiles.
    EXPECT_EQ(service.stats().backend_runs, 4u);
    EXPECT_EQ(service.stats().simulations, 8u);
  }

  options.jobs = 4;  // jobs must not affect results either
  Service warm(options);
  const std::vector<RunOutcome> warm_outcomes =
      warm.run_batch(sources, configs);
  const ServiceStats stats = warm.stats();
  EXPECT_EQ(stats.compiles(), 0u);
  EXPECT_EQ(stats.simulations, 0u);
  EXPECT_EQ(stats.result_hits, 8u);

  ASSERT_EQ(warm_outcomes.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].error;
    EXPECT_TRUE(warm_outcomes[i].from_result_cache) << i;
    EXPECT_EQ(warm_outcomes[i].cycles, cold[i].cycles) << i;
    EXPECT_EQ(warm_outcomes[i].ops_committed, cold[i].ops_committed) << i;
    EXPECT_EQ(warm_outcomes[i].output_words, cold[i].output_words) << i;
    EXPECT_EQ(warm_outcomes[i].output_hash, cold[i].output_hash) << i;
    EXPECT_EQ(warm_outcomes[i].ret, cold[i].ret) << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(Service, ResultCacheNeverAnswersForDifferentCodegenOptions) {
  const std::string dir = scratch_dir("result_keying");
  ProcessorConfig cfg;

  Options optimized;
  optimized.store_dir = dir;
  {
    Service service(optimized);
    const auto outcomes = service.run_batch({kProg}, {cfg});
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  }
  Options unoptimized = optimized;
  unoptimized.codegen.optimize = false;
  Service service(unoptimized);
  const auto outcomes = service.run_batch({kProg}, {cfg});
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  // Same source, same config — but different codegen options must miss
  // the persisted results and resimulate.
  EXPECT_FALSE(outcomes[0].from_result_cache);
  EXPECT_EQ(service.stats().simulations, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Service, BatchIndexingIsSourceMajorAndFailuresAreContained) {
  ProcessorConfig good;
  ProcessorConfig bad;
  bad.num_alus = 0;  // validate() rejects

  Service service;
  const std::vector<std::string> sources{kProg, kProg2};
  const auto outcomes = service.run_batch(sources, {good, bad});
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok);   // kProg  x good
  EXPECT_FALSE(outcomes[1].ok);  // kProg  x bad
  EXPECT_TRUE(outcomes[2].ok);   // kProg2 x good
  EXPECT_FALSE(outcomes[3].ok);  // kProg2 x bad
  EXPECT_NE(outcomes[1].error.find("num_alus"), std::string::npos);
  // Distinct sources on the same config produce distinct outputs.
  EXPECT_NE(outcomes[0].output_hash, outcomes[2].output_hash);
}

// ----------------------------------------------------- simulation dedup

TEST(SimSlice, ResetsExactlyTheSimulatorInvisibleFields) {
  ProcessorConfig cfg;
  cfg.num_alus = 3;
  cfg.max_regs_per_instr = 3;
  cfg.reg_port_budget = 6;
  cfg.forwarding = false;
  cfg.load_latency = 2;
  cfg.pipeline_stages = 4;
  cfg.unified_memory_contention = true;

  const ProcessorConfig slice = Service::sim_slice(cfg);
  const ProcessorConfig defaults;
  // The simulator-invisible fields are reset...
  EXPECT_EQ(slice.num_alus, defaults.num_alus);
  EXPECT_EQ(slice.max_regs_per_instr, defaults.max_regs_per_instr);
  // ...and everything the simulator reads is preserved.
  EXPECT_EQ(slice.reg_port_budget, 6u);
  EXPECT_FALSE(slice.forwarding);
  EXPECT_EQ(slice.load_latency, 2u);
  EXPECT_EQ(slice.pipeline_stages, 4u);
  EXPECT_TRUE(slice.unified_memory_contention);
}

TEST(Service, DuplicateBatchItemsSimulateOnce) {
  ProcessorConfig cfg;
  Service service;
  const auto outcomes = service.run_batch({kProg}, {cfg, cfg});
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.sim_dedup_hits, 1u);
  EXPECT_EQ(outcomes[0].cycles, outcomes[1].cycles);
  EXPECT_EQ(outcomes[0].output_hash, outcomes[1].output_hash);
}

TEST(Service, IdenticalProgramsAcrossCompileGroupsSimulateOnce) {
  // num_alus above the issue width cannot change the schedule (packing
  // is bounded by issue_width), so 4 and 8 ALUs compile separately —
  // distinct codegen slices — yet yield byte-identical programs. The
  // dedup digest canonicalises num_alus away (sim_slice) and collapses
  // the two simulations.
  ProcessorConfig a;  // 4 ALUs
  ProcessorConfig b;
  b.num_alus = 8;
  {
    Service probe;
    Program pa = probe.compile_program(kProg, a);
    Program pb = probe.compile_program(kProg, b);
    pa.config = Service::sim_slice(pa.config);
    pb.config = Service::sim_slice(pb.config);
    ASSERT_EQ(serial::encode_program(pa), serial::encode_program(pb))
        << "precondition: these configs no longer produce identical "
           "programs; pick another simulator-invisible codegen knob";
  }

  Service service;
  const auto outcomes = service.run_batch({kProg}, {a, b});
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.backend_runs, 2u);  // separate compile groups...
  EXPECT_EQ(stats.simulations, 1u);   // ...one simulation
  EXPECT_EQ(stats.sim_dedup_hits, 1u);
  EXPECT_EQ(outcomes[0].cycles, outcomes[1].cycles);
  EXPECT_EQ(outcomes[0].output_hash, outcomes[1].output_hash);
  EXPECT_EQ(outcomes[0].ret, outcomes[1].ret);
}

TEST(Service, SimVisibleVariantsAreNeverDeduped) {
  ProcessorConfig a;
  ProcessorConfig b;
  b.pipeline_stages = 3;

  Service service;
  const auto outcomes = service.run_batch({kProg}, {a, b});
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.backend_runs, 1u);  // shared compile...
  EXPECT_EQ(stats.simulations, 2u);   // ...but both points simulate
  EXPECT_EQ(stats.sim_dedup_hits, 0u);
  EXPECT_NE(outcomes[0].cycles, outcomes[1].cycles);
}

TEST(Service, ResultCacheNeverAnswersAcrossExecutionTiers) {
  // Tiers are differentially proven bit-identical, but the cache must
  // not rely on that: a cached outcome may only answer for the tier
  // that produced it, so a tier divergence can never hide behind a
  // result-cache hit. Both the persisted-result context and the
  // in-batch sim-dedup digest fold the tier.
  const std::string dir = scratch_dir("tier_keying");
  ProcessorConfig cfg;

  Options threaded;
  threaded.store_dir = dir;
  threaded.sim.exec_tier = ExecTier::Threaded;
  std::vector<RunOutcome> first;
  {
    Service service(threaded);
    first = service.run_batch({kProg}, {cfg});
    ASSERT_TRUE(first[0].ok) << first[0].error;
    EXPECT_EQ(service.stats().simulations, 1u);
  }

  Options decode = threaded;
  decode.sim.exec_tier = ExecTier::Decode;
  {
    Service service(decode);
    const auto outcomes = service.run_batch({kProg}, {cfg});
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[0].from_result_cache);
    EXPECT_EQ(service.stats().simulations, 1u);
    // The oracle contract still holds: identical observable outcome.
    EXPECT_EQ(outcomes[0].cycles, first[0].cycles);
    EXPECT_EQ(outcomes[0].output_hash, first[0].output_hash);
    EXPECT_EQ(outcomes[0].ret, first[0].ret);
  }

  // Same tier again: now the persisted result answers.
  Service warm(threaded);
  const auto warm_outcomes = warm.run_batch({kProg}, {cfg});
  ASSERT_TRUE(warm_outcomes[0].ok) << warm_outcomes[0].error;
  EXPECT_TRUE(warm_outcomes[0].from_result_cache);
  EXPECT_EQ(warm.stats().simulations, 0u);
  std::filesystem::remove_all(dir);
}

TEST(Explore, SweepBatchSharesCompilesAcrossSourcesAndMatchesRunSweep) {
  explore::SweepSpec spec;
  for (unsigned stages = 2; stages <= 4; ++stages) {
    ProcessorConfig cfg;
    cfg.pipeline_stages = stages;
    spec.add(cfg);
  }

  explore::ExploreOptions options;
  const explore::SweepBatch batch =
      explore::run_sweep_batch({kProg, kProg2}, spec, options);
  ASSERT_EQ(batch.sweeps.size(), 2u);
  // 3 stage variants per source collapse onto one compile per source.
  EXPECT_EQ(batch.stats.backend_runs, 2u);
  EXPECT_EQ(batch.stats.simulations, 6u);

  const explore::SweepResult lone = explore::run_sweep(kProg, spec, options);
  EXPECT_EQ(batch.sweeps[0].to_csv(), lone.to_csv());
  EXPECT_EQ(batch.sweeps[0].to_json(), lone.to_json());
}

// ------------------------------------------------- IR-lint granularity

// A source whose *unoptimised* IR carries a dead store (the first write
// to x is overwritten before any read), so lint_ir has a finding to
// cache when the Service runs with optimize off.
const char* kDeadStoreProg =
    "int main() { int x = 1; x = 2; out(x); return 0; }";

TEST(Service, IrLintRunsOnceAndIsServedFromTheWarmStore) {
  const std::string dir = scratch_dir("irlint");
  Options options;
  options.store_dir = dir;
  analysis::LintReport cold;
  {
    Service service(options);
    cold = service.lint_ir(kProg);
    EXPECT_EQ(service.stats().ir_lint_runs, 1u);
    const analysis::LintReport again = service.lint_ir(kProg);
    EXPECT_EQ(service.stats().ir_lint_runs, 1u);
    EXPECT_EQ(again.to_json(), cold.to_json());
  }
  // A fresh Service over the same store serves the cached report: no
  // lint execution, and no IR rebuild either (the lint never needed the
  // Module on the warm path).
  Service warm(options);
  const analysis::LintReport report = warm.lint_ir(kProg);
  EXPECT_EQ(warm.stats().ir_lint_runs, 0u);
  EXPECT_EQ(warm.stats().frontend_runs, 0u);
  EXPECT_EQ(warm.stats().store.ir_lint.hits, 1u);
  EXPECT_EQ(report.to_json(), cold.to_json());
}

TEST(Service, IrLintReportRoundTripsThroughTheStoreFieldForField) {
  Options options;
  options.codegen.optimize = false;
  Service service(options);
  const analysis::LintReport direct =
      analysis::lint_module(service.compile_module(kDeadStoreProg));
  ASSERT_FALSE(direct.diags.empty());
  const analysis::LintReport cached = service.lint_ir(kDeadStoreProg);
  EXPECT_EQ(cached.to_json(), direct.to_json());
  EXPECT_EQ(cached.to_text(), direct.to_text());
}

TEST(Service, IrLintWerrorAppliesAtReadTimeOverOneCachedBlob) {
  Options options;
  options.codegen.optimize = false;
  Service service(options);
  const analysis::LintReport lax = service.lint_ir(kDeadStoreProg,
                                                   /*werror=*/false);
  ASSERT_GT(lax.warning_count(), 0u) << lax.to_text();
  EXPECT_EQ(lax.error_count(), 0u);
  EXPECT_TRUE(lax.clean());
  // The strict read reuses the same cached blob — no second lint run —
  // and folds werror in on the way out.
  const analysis::LintReport strict = service.lint_ir(kDeadStoreProg,
                                                      /*werror=*/true);
  EXPECT_EQ(service.stats().ir_lint_runs, 1u);
  EXPECT_FALSE(strict.clean());
  EXPECT_EQ(strict.error_count(), lax.warning_count());
  EXPECT_EQ(strict.diags.size(), lax.diags.size());
}

}  // namespace
}  // namespace cepic::pipeline
