// Driver-layer tests: the one-call pipelines, option threading, and the
// equivalence between driver results and manually chained stages.
#include <gtest/gtest.h>

#include "asmtool/assembler.hpp"
#include "driver/driver.hpp"
#include "frontend/irgen.hpp"
#include "opt/opt.hpp"

namespace cepic::driver {
namespace {

const char* kProgram =
    "int main() { int s = 0;"
    " for (int i = 0; i < 6; i++) s += i * i;"
    " out(s); return s; }";

TEST(Driver, CompileProducesConsistentArtifacts) {
  const ProcessorConfig cfg;
  const EpicCompileResult r = compile_minic_to_epic(kProgram, cfg);
  // The assembly must reassemble into the identical program.
  const Program again = asmtool::assemble(r.asm_text, cfg);
  EXPECT_EQ(again.encode_code(), r.program.encode_code());
  EXPECT_EQ(r.program.config, cfg);
  EXPECT_NE(r.asm_text.find("fn_main:"), std::string::npos);
  // The optimised module is exposed for inspection.
  EXPECT_NE(r.module.find_function("main"), nullptr);
}

TEST(Driver, RunReturnsReadySimulator) {
  EpicSimulator sim = run_minic_on_epic(kProgram, ProcessorConfig{});
  EXPECT_TRUE(sim.halted());
  ASSERT_EQ(sim.output().size(), 1u);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.gpr(3), 55u);
  EXPECT_GT(sim.stats().cycles, 0u);
}

TEST(Driver, SimOptionsThreadThroughToStackTop) {
  // A smaller memory must still work: the backend's stack-top constant
  // follows sim_options.mem_size.
  SimOptions small;
  small.mem_size = 1 << 16;
  EpicSimulator sim = run_minic_on_epic(kProgram, ProcessorConfig{}, {},
                                        small);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.memory().size(), std::size_t{1} << 16);
}

TEST(Driver, UnoptimisedPipelineAgrees) {
  EpicCompileOptions no_opt;
  no_opt.optimize = false;
  EpicSimulator a = run_minic_on_epic(kProgram, ProcessorConfig{}, no_opt);
  EpicSimulator b = run_minic_on_epic(kProgram, ProcessorConfig{});
  EXPECT_EQ(a.output(), b.output());
  // And the optimiser must actually pay for itself here.
  EXPECT_LT(b.stats().cycles, a.stats().cycles);
}

TEST(Driver, SarmDefaultsDisableEpicIfConversion) {
  const SarmCompileOptions options;
  EXPECT_FALSE(options.opt.if_convert);
  auto sim = run_minic_on_sarm(kProgram);
  EXPECT_EQ(sim.output()[0], 55u);
  EXPECT_EQ(sim.reg(0), 55u);
}

TEST(Driver, CompileErrorsPropagate) {
  EXPECT_THROW(compile_minic_to_epic("int main() { return x; }",
                                     ProcessorConfig{}),
               CompileError);
  EXPECT_THROW(compile_minic_to_sarm("int main( { }"), CompileError);
}

TEST(Driver, ConfigWithoutEnoughRegistersIsRejected) {
  ProcessorConfig cfg;
  cfg.num_gprs = 8;  // below the ABI's reserved set
  EXPECT_THROW(compile_minic_to_epic(kProgram, cfg), Error);
}

TEST(Driver, CustomOpsConfigIsCarriedIntoTheBinary) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  const EpicCompileResult r = compile_minic_to_epic(kProgram, cfg);
  EXPECT_EQ(r.program.config.custom_ops, cfg.custom_ops);
  // A simulator built from the serialised binary picks the ops back up.
  const Program loaded = Program::deserialize(r.program.serialize());
  EXPECT_EQ(loaded.config.custom_ops, cfg.custom_ops);
}

TEST(Driver, ProgramsAreReRunnableAfterReset) {
  EpicSimulator sim = run_minic_on_epic(kProgram, ProcessorConfig{});
  const auto first = sim.output();
  const auto cycles = sim.stats().cycles;
  sim.reset();
  sim.run();
  EXPECT_EQ(sim.output(), first);
  EXPECT_EQ(sim.stats().cycles, cycles);  // deterministic cycle model
}

}  // namespace
}  // namespace cepic::driver
