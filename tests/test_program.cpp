#include <gtest/gtest.h>

#include "serial/serial.hpp"
#include "core/program.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

using namespace testutil;

TEST(Program, AppendBundlePadsWithNops) {
  Program p;
  p.config = ProcessorConfig{};  // issue width 4
  const std::vector<Instruction> ops = {add(1, R(2), R(3))};
  p.append_bundle(std::span<const Instruction>(ops.data(), ops.size()));
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[0].op, Op::ADD);
  EXPECT_TRUE(p.code[1].is_nop());
  EXPECT_TRUE(p.code[3].is_nop());
  EXPECT_EQ(p.bundle_count(), 1u);
}

TEST(Program, AppendBundleRejectsOverWidth) {
  Program p;
  p.config.issue_width = 2;
  const std::vector<Instruction> ops = {add(1, R(2), R(3)), add(4, R(5), R(6)),
                                        add(7, R(8), R(9))};
  EXPECT_THROW(
      p.append_bundle(std::span<const Instruction>(ops.data(), ops.size())),
      InternalError);
}

TEST(Program, BundleAccess) {
  const Program p = make_program(ProcessorConfig{},
                                 {{add(1, R(2), R(3))}, {halt()}});
  EXPECT_EQ(p.bundle_count(), 2u);
  EXPECT_EQ(p.bundle(0)[0].op, Op::ADD);
  EXPECT_EQ(p.bundle(1)[0].op, Op::HALT);
  EXPECT_THROW(p.bundle(2), InternalError);
}

TEST(Program, EncodeCodeValidatesEverything) {
  Program p = make_program(ProcessorConfig{}, {{add(1, R(2), R(3))}});
  EXPECT_EQ(p.encode_code().size(), 4u);
  p.code[0].dest1 = 999;  // corrupt
  EXPECT_THROW(p.encode_code(), Error);
}

TEST(Program, SerializeRoundtrip) {
  ProcessorConfig cfg;
  cfg.num_alus = 2;
  cfg.issue_width = 2;
  Program p = make_program(
      cfg, {{add(1, R(2), I(7)), mov(3, I(-1))},
            {stw(1, 3, 0)},
            {out(R(1)), halt()}});
  p.entry_bundle = 1;
  p.data = {1, 2, 3, 4, 0xFF};
  p.code_symbols["main"] = 1;
  p.data_symbols["table"] = kDataBase;

  const std::vector<std::uint8_t> bytes = serial::encode_program(p);
  const Program q = serial::decode_program(bytes);

  EXPECT_EQ(q.config, p.config);
  EXPECT_EQ(q.code, p.code);
  EXPECT_EQ(q.data, p.data);
  EXPECT_EQ(q.entry_bundle, 1u);
  EXPECT_EQ(q.code_symbols.at("main"), 1u);
  EXPECT_EQ(q.data_symbols.at("table"), kDataBase);
}

TEST(Program, DeserializeRejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(serial::decode_program(bytes), Error);
}

TEST(Program, DeserializeRejectsTruncation) {
  const Program p = make_program(ProcessorConfig{}, {{halt()}});
  std::vector<std::uint8_t> bytes = serial::encode_program(p);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(serial::decode_program(bytes), Error);
}

TEST(Program, DeserializeRejectsTrailingBytes) {
  const Program p = make_program(ProcessorConfig{}, {{halt()}});
  std::vector<std::uint8_t> bytes = serial::encode_program(p);
  bytes.push_back(0);
  EXPECT_THROW(serial::decode_program(bytes), Error);
}

}  // namespace
}  // namespace cepic
