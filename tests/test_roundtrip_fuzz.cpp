// Property/fuzz tests with logged seeds: randomly generated *valid*
// instructions must be fixed points of encode -> decode
// (core/encoding.*), and randomly generated programs must be fixed
// points of assemble -> disassemble -> assemble (src/asmtool), with the
// encoded words bit-identical. Every failure message carries the seed
// and the offending instruction/program so a run is reproducible.
#include <gtest/gtest.h>

#include "serial/serial.hpp"
#include "asmtool/assembler.hpp"
#include "core/encoding.hpp"
#include "core/instruction.hpp"
#include "core/program.hpp"
#include "mcheck/mcheck.hpp"
#include "sim/simulator.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "test_util.hpp"

namespace cepic {
namespace {

// The generators and the config grid live in test_util.hpp so the
// fast-vs-interpretive simulator differential suite fuzzes the same
// program distribution with the same seeds.
using testutil::NamedConfig;
using testutil::fuzz_configs;
using testutil::random_instruction;
using testutil::random_program;

TEST(EncodeDecodeFuzz, EncodeThenDecodeIsAFixedPoint) {
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0xC0FFEEull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 1500; ++i) {
      const Instruction inst = random_instruction(rng, nc.cfg);
      const std::uint64_t word = encode_instruction(inst, nc.cfg);
      const Instruction back = decode_instruction(word, nc.cfg);
      ASSERT_EQ(back, inst) << "iteration " << i << ": " << to_string(inst)
                            << " decoded as " << to_string(back);
      // And the word itself is a fixed point of decode -> encode.
      ASSERT_EQ(encode_instruction(back, nc.cfg), word)
          << "iteration " << i << ": " << to_string(inst);
    }
  }
}

/// The encoding-level subset of the mcheck rules: everything a program
/// of independent random instructions must satisfy by construction.
/// (The schedule-quality rules — latency, port budget, BTR discipline —
/// are deliberately excluded: random instruction soup trips them
/// legitimately, and MultiOps hold one op here anyway.)
mcheck::CheckOptions encoding_rules() {
  return mcheck::CheckOptions::only(
      {mcheck::Rule::Structure, mcheck::Rule::FieldWidth,
       mcheck::Rule::RegBounds, mcheck::Rule::FuMissing,
       mcheck::Rule::FuOversubscribed, mcheck::Rule::BranchTarget});
}

TEST(McheckFuzz, ValidRandomProgramsAreLintClean) {
  // The fuzzer's validity predicate (validate_instruction + clamped
  // branch targets) and mcheck's encoding rules must agree: a program
  // the fuzzer calls valid is lint-clean, for every customisation.
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0x11DEA5ull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p = random_program(rng, nc.cfg);
      const mcheck::Report rep = mcheck::check_program(p, encoding_rules());
      ASSERT_TRUE(rep.clean()) << "iteration " << i << "\n"
                               << asmtool::disassemble(p) << rep.to_text();
    }
  }
}

TEST(McheckFuzz, LintCleanProgramsAreNeverRejectedAtSimulationTime) {
  // Soundness of the static verdict: a lint-clean program must never
  // hit the simulator's *static* rejections ("not implemented on this
  // customisation", "branch ... past end of program"). Dynamic stops —
  // the cycle limit, or running off the end when a guarded HALT is
  // nullified — depend on predicate values and stay out of scope.
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0x51D0C4ull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p = random_program(rng, nc.cfg);
      if (!mcheck::check_program(p, encoding_rules()).clean()) continue;
      // Lint-clean implies encodable and serialisable...
      ASSERT_NO_THROW((void)p.encode_code());
      ASSERT_NO_THROW((void)serial::encode_program(p));
      // ...and simulatable up to dynamic control-flow effects.
      SimOptions sim_options;
      sim_options.max_cycles = 10'000;
      CustomOpTable custom = CustomOpTable::for_names(nc.cfg.custom_ops);
      EpicSimulator sim(p, custom, sim_options);
      try {
        sim.run();
      } catch (const SimError& e) {
        const std::string what = e.what();
        EXPECT_EQ(what.find("not implemented"), std::string::npos)
            << "iteration " << i << ": " << what << "\n"
            << asmtool::disassemble(p);
        EXPECT_EQ(what.find("branch to bundle"), std::string::npos)
            << "iteration " << i << ": " << what << "\n"
            << asmtool::disassemble(p);
      }
    }
  }
}

TEST(AssemblerRoundTripFuzz, AssembleDisassembleAssembleIsAFixedPoint) {
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0xA55E3B1Eull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p1 = random_program(rng, nc.cfg);
      const std::string text1 = asmtool::disassemble(p1);
      SCOPED_TRACE(cat("iteration ", i, "\n", text1));
      const Program p2 = asmtool::assemble(text1, nc.cfg);
      ASSERT_EQ(p2.encode_code(), p1.encode_code());
      ASSERT_EQ(p2.entry_bundle, p1.entry_bundle);
      // Disassembly of the reassembled program is also a fixed point.
      ASSERT_EQ(asmtool::disassemble(p2), text1);
    }
  }
}

}  // namespace
}  // namespace cepic
