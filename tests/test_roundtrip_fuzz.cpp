// Property/fuzz tests with logged seeds: randomly generated *valid*
// instructions must be fixed points of encode -> decode
// (core/encoding.*), and randomly generated programs must be fixed
// points of assemble -> disassemble -> assemble (src/asmtool), with the
// encoded words bit-identical. Every failure message carries the seed
// and the offending instruction/program so a run is reproducible.
#include <gtest/gtest.h>

#include "asmtool/assembler.hpp"
#include "core/encoding.hpp"
#include "core/instruction.hpp"
#include "core/program.hpp"
#include "mcheck/mcheck.hpp"
#include "sim/simulator.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace cepic {
namespace {

unsigned file_count(const ProcessorConfig& cfg, RegFile f) {
  switch (f) {
    case RegFile::Gpr: return cfg.num_gprs;
    case RegFile::Pred: return cfg.num_preds;
    case RegFile::Btr: return cfg.num_btrs;
    default: return 1;
  }
}

RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    default: return RegFile::None;
  }
}

Operand random_src(Prng& rng, const ProcessorConfig& cfg,
                   const InstructionFormat& fmt, SrcSpec spec, bool zext) {
  const auto random_lit = [&]() -> Operand {
    if (zext) {
      return Operand::imm(static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint32_t>(1u << fmt.src_bits))));
    }
    const std::int32_t hi = (std::int32_t{1} << (fmt.src_bits - 1)) - 1;
    return Operand::imm(rng.next_in(-hi - 1, hi));
  };
  switch (spec) {
    case SrcSpec::None:
      return Operand::none();
    case SrcSpec::Gpr:
    case SrcSpec::Pred:
    case SrcSpec::Btr:
      return Operand::r(rng.next_below(file_count(cfg, src_file(spec))));
    case SrcSpec::LitOnly:
      return random_lit();
    case SrcSpec::GprOrLit:
      if (rng.next_below(2) == 0) {
        return Operand::r(rng.next_below(cfg.num_gprs));
      }
      return random_lit();
  }
  return Operand::none();
}

/// A uniformly random instruction that passes validate_instruction for
/// `cfg` (rejection-sampled; ops the configuration disables — trimmed
/// ALU features, unbound custom slots — simply never survive).
Instruction random_instruction(Prng& rng, const ProcessorConfig& cfg) {
  const InstructionFormat fmt = cfg.format();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Op op =
        static_cast<Op>(rng.next_below(static_cast<std::uint32_t>(kNumOps)));
    const OpInfo& info = op_info(op);
    Instruction inst;
    inst.op = op;
    if (info.dest1 != RegFile::None) {
      inst.dest1 = rng.next_below(file_count(cfg, info.dest1));
    }
    if (info.dest2 != RegFile::None) {
      inst.dest2 = rng.next_below(file_count(cfg, info.dest2));
    }
    inst.src1 = random_src(rng, cfg, fmt, info.src1, info.literal_zero_extends);
    inst.src2 = random_src(rng, cfg, fmt, info.src2, info.literal_zero_extends);
    inst.pred = rng.next_below(cfg.num_preds);
    if (validate_instruction(inst, cfg).empty()) return inst;
  }
  ADD_FAILURE() << "could not sample a valid instruction in 1000 attempts";
  return Instruction::halt();
}

struct NamedConfig {
  const char* name;
  ProcessorConfig cfg;
};

std::vector<NamedConfig> fuzz_configs() {
  std::vector<NamedConfig> cfgs;
  cfgs.push_back({"defaults", ProcessorConfig{}});
  {
    ProcessorConfig c;
    c.num_gprs = 16;
    c.num_preds = 4;
    c.num_btrs = 2;
    c.issue_width = 2;
    cfgs.push_back({"small_files", c});
  }
  {
    // The defaults already fill the 64-bit container exactly, so
    // "wider" here means more predicate/branch resources within it.
    ProcessorConfig c;
    c.num_gprs = 32;
    c.num_btrs = 64;  // index_bits(64) == 6, still inside the container
    c.issue_width = 1;
    cfgs.push_back({"btr_heavy", c});
  }
  {
    ProcessorConfig c;
    c.alu.has_div = false;
    c.alu.has_minmax = false;
    cfgs.push_back({"trimmed_alu", c});
  }
  {
    ProcessorConfig c;
    c.custom_ops = {"rotr"};
    cfgs.push_back({"custom_op", c});
  }
  for (const NamedConfig& nc : cfgs) nc.cfg.validate();
  return cfgs;
}

TEST(EncodeDecodeFuzz, EncodeThenDecodeIsAFixedPoint) {
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0xC0FFEEull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 1500; ++i) {
      const Instruction inst = random_instruction(rng, nc.cfg);
      const std::uint64_t word = encode_instruction(inst, nc.cfg);
      const Instruction back = decode_instruction(word, nc.cfg);
      ASSERT_EQ(back, inst) << "iteration " << i << ": " << to_string(inst)
                            << " decoded as " << to_string(back);
      // And the word itself is a fixed point of decode -> encode.
      ASSERT_EQ(encode_instruction(back, nc.cfg), word)
          << "iteration " << i << ": " << to_string(inst);
    }
  }
}

/// Random program for the assembler round trip: one random instruction
/// per bundle (so no bundle-level functional-unit conflicts arise by
/// construction), HALT-terminated. Branch-target literals are clamped
/// to real bundle addresses.
Program random_program(Prng& rng, const ProcessorConfig& cfg) {
  Program p;
  p.config = cfg;
  const int bundles = rng.next_in(4, 12);
  for (int b = 0; b < bundles; ++b) {
    Instruction inst = random_instruction(rng, cfg);
    if (inst.op == Op::PBR) {
      inst.src1 = Operand::imm(
          static_cast<std::int32_t>(rng.next_below(bundles + 1)));
    }
    // A guarded NOP is semantically a NOP; the disassembler prints NOP
    // slots in canonical (unguarded) form, so generate them that way.
    if (inst.is_nop()) inst = Instruction::nop();
    p.append_bundle({&inst, 1});
  }
  const Instruction halt = Instruction::halt();
  p.append_bundle({&halt, 1});
  return p;
}

/// The encoding-level subset of the mcheck rules: everything a program
/// of independent random instructions must satisfy by construction.
/// (The schedule-quality rules — latency, port budget, BTR discipline —
/// are deliberately excluded: random instruction soup trips them
/// legitimately, and MultiOps hold one op here anyway.)
mcheck::CheckOptions encoding_rules() {
  return mcheck::CheckOptions::only(
      {mcheck::Rule::Structure, mcheck::Rule::FieldWidth,
       mcheck::Rule::RegBounds, mcheck::Rule::FuMissing,
       mcheck::Rule::FuOversubscribed, mcheck::Rule::BranchTarget});
}

TEST(McheckFuzz, ValidRandomProgramsAreLintClean) {
  // The fuzzer's validity predicate (validate_instruction + clamped
  // branch targets) and mcheck's encoding rules must agree: a program
  // the fuzzer calls valid is lint-clean, for every customisation.
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0x11DEA5ull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p = random_program(rng, nc.cfg);
      const mcheck::Report rep = mcheck::check_program(p, encoding_rules());
      ASSERT_TRUE(rep.clean()) << "iteration " << i << "\n"
                               << asmtool::disassemble(p) << rep.to_text();
    }
  }
}

TEST(McheckFuzz, LintCleanProgramsAreNeverRejectedAtSimulationTime) {
  // Soundness of the static verdict: a lint-clean program must never
  // hit the simulator's *static* rejections ("not implemented on this
  // customisation", "branch ... past end of program"). Dynamic stops —
  // the cycle limit, or running off the end when a guarded HALT is
  // nullified — depend on predicate values and stay out of scope.
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0x51D0C4ull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p = random_program(rng, nc.cfg);
      if (!mcheck::check_program(p, encoding_rules()).clean()) continue;
      // Lint-clean implies encodable and serialisable...
      ASSERT_NO_THROW((void)p.encode_code());
      ASSERT_NO_THROW((void)p.serialize());
      // ...and simulatable up to dynamic control-flow effects.
      SimOptions sim_options;
      sim_options.max_cycles = 10'000;
      CustomOpTable custom = CustomOpTable::for_names(nc.cfg.custom_ops);
      EpicSimulator sim(p, custom, sim_options);
      try {
        sim.run();
      } catch (const SimError& e) {
        const std::string what = e.what();
        EXPECT_EQ(what.find("not implemented"), std::string::npos)
            << "iteration " << i << ": " << what << "\n"
            << asmtool::disassemble(p);
        EXPECT_EQ(what.find("branch to bundle"), std::string::npos)
            << "iteration " << i << ": " << what << "\n"
            << asmtool::disassemble(p);
      }
    }
  }
}

TEST(AssemblerRoundTripFuzz, AssembleDisassembleAssembleIsAFixedPoint) {
  for (const NamedConfig& nc : fuzz_configs()) {
    const std::uint64_t seed = 0xA55E3B1Eull ^ fnv1a64(nc.name);
    SCOPED_TRACE(cat("config=", nc.name, " seed=0x", seed));
    Prng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const Program p1 = random_program(rng, nc.cfg);
      const std::string text1 = asmtool::disassemble(p1);
      SCOPED_TRACE(cat("iteration ", i, "\n", text1));
      const Program p2 = asmtool::assemble(text1, nc.cfg);
      ASSERT_EQ(p2.encode_code(), p1.encode_code());
      ASSERT_EQ(p2.entry_bundle, p1.entry_bundle);
      // Disassembly of the reassembled program is also a fixed point.
      ASSERT_EQ(asmtool::disassemble(p2), text1);
    }
  }
}

}  // namespace
}  // namespace cepic
