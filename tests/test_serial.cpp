// The CEPX binary container and payload codecs (docs/FORMAT.md):
// canonical round-trips for random and workload Modules/Programs/
// configurations, the text↔binary equivalence through the IR parser,
// layered rejection of corrupt/truncated/pre-PR7 containers, the
// mutation-fuzz decode smoke the sanitizer CI job runs, and the
// warm-store property that Modules load as a binary decode with no
// frontend parse span in the obs trace.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "ir/parse.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "serial/serial.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace cepic {
namespace {

using serial::PayloadKind;

std::vector<std::uint8_t> sample_program_bytes() {
  Prng rng(7);
  return serial::encode_program(
      testutil::random_program(rng, ProcessorConfig{}));
}

std::vector<std::uint8_t> sample_module_bytes() {
  Prng rng(8);
  return serial::encode_module(testutil::random_module(rng));
}

/// EXPECT that decoding throws and the diagnostic mentions `needle`.
template <typename Decode>
void expect_rejects(Decode&& decode, std::string_view needle) {
  try {
    decode();
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string_view(e.what()).find(needle), std::string_view::npos)
        << "diagnostic was: " << e.what();
  }
}

// ------------------------------------------------- canonical round-trips

TEST(SerialModule, RandomModulesRoundTripBitIdentical) {
  Prng rng(1);
  for (int i = 0; i < 200; ++i) {
    const ir::Module m = testutil::random_module(rng);
    const std::vector<std::uint8_t> bytes = serial::encode_module(m);
    EXPECT_EQ(serial::detect_kind(bytes), PayloadKind::kModule);
    const ir::Module back = serial::decode_module(bytes);
    ASSERT_EQ(back, m) << "iteration " << i;
    ASSERT_EQ(serial::encode_module(back), bytes) << "iteration " << i;
  }
}

TEST(SerialModule, TextAndBinaryFormsAgreeExactly) {
  Prng rng(2);
  for (int i = 0; i < 100; ++i) {
    const ir::Module m = testutil::random_module(rng);
    // text → Module: the parser reconstructs the module exactly
    // (random_module keeps next_vreg at max-used + 1, the invariant the
    // text form preserves).
    const std::string text = ir::to_string(m);
    const ir::Module parsed = ir::parse_module(text);
    ASSERT_EQ(parsed, m) << "iteration " << i << "\n" << text;
    ASSERT_EQ(ir::to_string(parsed), text);
    // text → Module → binary → Module → text, byte-identical end to end.
    const ir::Module thawed =
        serial::decode_module(serial::encode_module(parsed));
    ASSERT_EQ(ir::to_string(thawed), text);
  }
}

TEST(SerialProgram, RandomProgramsRoundTripAcrossTheConfigGrid) {
  for (const testutil::NamedConfig& nc : testutil::fuzz_configs()) {
    SCOPED_TRACE(nc.name);
    Prng rng(3);
    for (int i = 0; i < 40; ++i) {
      const Program p = testutil::random_program(rng, nc.cfg);
      const std::vector<std::uint8_t> bytes = serial::encode_program(p);
      EXPECT_EQ(serial::detect_kind(bytes), PayloadKind::kProgram);
      const Program back = serial::decode_program(bytes);
      ASSERT_EQ(back, p) << "iteration " << i;
      ASSERT_EQ(serial::encode_program(back), bytes) << "iteration " << i;
    }
  }
}

TEST(SerialConfig, ConfigsRoundTripBitIdentical) {
  for (const testutil::NamedConfig& nc : testutil::fuzz_configs()) {
    SCOPED_TRACE(nc.name);
    const std::vector<std::uint8_t> bytes = serial::encode_config(nc.cfg);
    EXPECT_EQ(serial::detect_kind(bytes), PayloadKind::kConfig);
    const ProcessorConfig back = serial::decode_config(bytes);
    EXPECT_EQ(back, nc.cfg);
    EXPECT_EQ(serial::encode_config(back), bytes);
  }
}

TEST(SerialWorkloads, ExactRoundTripsAcrossTheDifferentialGrid) {
  // The acceptance sweep: every bundled workload, compiled across the
  // differential suite's ALU grid — re-encode byte-identical for both
  // Modules and Programs, re-print text-identical for the IR.
  for (const workloads::Workload& w : workloads::all_workloads(8, 1, 8, 5)) {
    for (unsigned alus = 1; alus <= 4; ++alus) {
      SCOPED_TRACE(cat(w.name, " @ ", alus, " ALUs"));
      ProcessorConfig cfg;
      cfg.num_alus = alus;
      const pipeline::CompileArtifacts r =
          pipeline::compile_once(w.minic_source, cfg);

      // Optimised modules may hold next_vreg above the highest live
      // vreg (dead defs were deleted), and the text form does not carry
      // it — so the text property is reprint-identity, not deep
      // equality.
      const std::string text = ir::to_string(r.module);
      const ir::Module parsed = ir::parse_module(text);
      EXPECT_EQ(ir::to_string(parsed), text);

      const std::vector<std::uint8_t> mbytes = serial::encode_module(r.module);
      EXPECT_EQ(serial::decode_module(mbytes), r.module);
      EXPECT_EQ(serial::encode_module(serial::decode_module(mbytes)), mbytes);

      const std::vector<std::uint8_t> pbytes =
          serial::encode_program(r.program);
      EXPECT_EQ(serial::decode_program(pbytes), r.program);
      EXPECT_EQ(serial::encode_program(serial::decode_program(pbytes)),
                pbytes);
    }
  }
}

// ------------------------------------------------- layered rejection

TEST(SerialReject, EmptyAndForeignFilesAreNotContainers) {
  const std::vector<std::uint8_t> empty;
  EXPECT_FALSE(serial::looks_like_cepx(empty));
  expect_rejects([&] { serial::decode_program(empty); }, "not a CEPX");

  const std::string text = "int main() { return 0; }";
  const std::vector<std::uint8_t> source(text.begin(), text.end());
  EXPECT_FALSE(serial::looks_like_cepx(source));
  expect_rejects([&] { (void)serial::detect_kind(source); }, "bad magic");
}

TEST(SerialReject, BadMagic) {
  std::vector<std::uint8_t> bytes = sample_program_bytes();
  bytes[0] = 'X';
  EXPECT_FALSE(serial::looks_like_cepx(bytes));
  expect_rejects([&] { serial::decode_program(bytes); }, "bad magic");
}

TEST(SerialReject, PreRefactorV1ContainersGetAnExplicitDiagnostic) {
  // The v1 format streamed a u32 version directly after the magic; a
  // v2 reader sees version 0 there and must say "old toolchain", not
  // "corrupt".
  std::vector<std::uint8_t> v1{'C', 'E', 'P', 'X', 0, 0, 0, 1, 0, 0, 0, 0};
  EXPECT_TRUE(serial::looks_like_cepx(v1));
  expect_rejects([&] { (void)serial::detect_kind(v1); }, "pre-PR7");
  expect_rejects([&] { serial::decode_program(v1); }, "pre-PR7");
}

TEST(SerialReject, FutureVersionsAreRejected) {
  std::vector<std::uint8_t> bytes = sample_program_bytes();
  bytes[5] = 9;  // header version field (big-endian u16 at offset 4)
  expect_rejects([&] { serial::decode_program(bytes); },
                 "unsupported CEPX container version");
}

TEST(SerialReject, EveryTruncationIsDiagnosed) {
  const std::vector<std::uint8_t> bytes = sample_program_bytes();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(n));
    EXPECT_THROW(serial::decode_program(cut), Error) << "prefix of " << n;
  }
}

TEST(SerialReject, TrailingBytesAreDiagnosed) {
  std::vector<std::uint8_t> bytes = sample_module_bytes();
  bytes.push_back(0);
  expect_rejects([&] { serial::decode_module(bytes); }, "trailing");
}

TEST(SerialReject, PayloadCorruptionFailsTheDigest) {
  std::vector<std::uint8_t> bytes = sample_module_bytes();
  bytes.back() ^= 0x40;  // payload byte: covered by the digest
  expect_rejects([&] { serial::decode_module(bytes); }, "digest");
}

TEST(SerialReject, WrongPayloadKindIsNamed) {
  expect_rejects([&] { serial::decode_module(sample_program_bytes()); },
                 "expected an IR module");
  expect_rejects([&] { serial::decode_config(sample_module_bytes()); },
                 "expected a processor configuration");
  expect_rejects(
      [&] { serial::decode_program(serial::encode_config(ProcessorConfig{})); },
      "expected a program");
}

TEST(SerialFuzz, MutatedContainersNeverCrashOnlyThrow) {
  // The sanitizer CI job runs this as its fuzz-decode smoke: random
  // bit flips and truncations over valid containers must either decode
  // or throw Error — never read out of bounds.
  const std::vector<std::vector<std::uint8_t>> bases = {
      sample_module_bytes(), sample_program_bytes(),
      serial::encode_config(ProcessorConfig{})};
  Prng rng(11);
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> bytes = bases[rng.next_below(3)];
    const int flips = rng.next_in(1, 8);
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(static_cast<std::uint32_t>(bytes.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    if (rng.next_below(4) == 0) {
      bytes.resize(rng.next_below(static_cast<std::uint32_t>(bytes.size())));
    }
    try {
      (void)serial::decode_module(bytes);
    } catch (const Error&) {
    }
    try {
      (void)serial::decode_program(bytes);
    } catch (const Error&) {
    }
    try {
      (void)serial::decode_config(bytes);
    } catch (const Error&) {
    }
  }
}

// ------------------------------------------------- the IR text parser

TEST(IrParse, RejectsMalformedTextWithALineNumber) {
  try {
    ir::parse_module(
        "int main() frame=0 {\n"
        ".b0:\n"
        "  %1 = frobnicate 1, 2\n"
        "}\n");
    FAIL() << "unknown op must be rejected";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 3);
  }
  EXPECT_THROW(ir::parse_module("global @g[0"), CompileError);
  EXPECT_THROW(ir::parse_module("int main( {\n}\n"), CompileError);
}

// ------------------------------------------------- warm-store decode

TEST(WarmStore, ModulesLoadWithoutAParseSpan) {
  const std::string dir = testing::TempDir() + "/serial_warm_store";
  std::filesystem::remove_all(dir);
  const char* kSrc =
      "int main() { int s = 0;"
      " for (int i = 0; i < 9; i++) s += i * 3;"
      " out(s); return s; }";
  pipeline::Options options;
  options.store_dir = dir;
  {
    pipeline::Service cold(options);
    (void)cold.compile_module(kSrc);
    EXPECT_EQ(cold.stats().frontend_runs, 1u);
  }

  obs::Registry::instance().reset();
  obs::set_enabled(true);
  pipeline::Service warm(options);
  const ir::Module module = warm.compile_module(kSrc);
  obs::set_enabled(false);

  EXPECT_NE(module.find_function("main"), nullptr);
  bool decoded_span = false;
  for (const obs::SpanRecord& s : obs::Registry::instance().spans()) {
    // The whole point of the binary store: a warm Module load is a
    // CEPX decode, never a frontend reparse.
    EXPECT_NE(s.name, "lex");
    EXPECT_NE(s.name, "parse");
    EXPECT_NE(s.name, "compile_to_ir");
    if (s.name == "module_decode") decoded_span = true;
  }
  EXPECT_TRUE(decoded_span);
  EXPECT_EQ(warm.stats().frontend_runs, 0u);
  EXPECT_EQ(warm.stats().module_decodes, 1u);
  obs::Registry::instance().reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cepic
