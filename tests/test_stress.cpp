// Randomised cross-execution stress test: generate random (terminating,
// well-defined) MiniC programs and require the IR interpreter, the EPIC
// simulator (several customisations) and the SARM baseline to produce
// identical output streams. This is the widest net in the suite — it
// has to catch anything from a parser precedence slip to a scheduler
// dependence bug to a simulator forwarding error.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace cepic {
namespace {

class ProgramGen {
public:
  explicit ProgramGen(std::uint64_t seed) : prng_(seed) {}

  std::string generate() {
    std::string src;
    // Globals: two arrays and two scalars with deterministic contents.
    src += "int ga[8] = {";
    for (int i = 0; i < 8; ++i) {
      src += cat(i ? ", " : "", prng_.next_in(-50, 50));
    }
    src += "};\n";
    src += cat("int gb[4] = {", prng_.next_in(1, 9), ", ",
               prng_.next_in(1, 9), ", ", prng_.next_in(1, 9), ", ",
               prng_.next_in(1, 9), "};\n");
    src += cat("int gx = ", prng_.next_in(-100, 100), ";\n");
    src += cat("int gy = ", prng_.next_in(1, 100), ";\n");

    // A couple of helper functions main can call.
    src += "int h1(int a, int b) {\n";
    src += body(/*depth=*/1, /*vars=*/{"a", "b"}, /*stmts=*/4);
    src += cat("  return ", expr(2, {"a", "b"}), ";\n}\n");

    src += "int h2(int a) {\n";
    src += body(1, {"a"}, 3);
    src += cat("  return ", expr(2, {"a"}), ";\n}\n");
    callables_ = 2;

    src += "int main() {\n";
    src += cat("  int v0 = ", prng_.next_in(-20, 20), ";\n");
    src += cat("  int v1 = ", prng_.next_in(-20, 20), ";\n");
    src += body(0, {"v0", "v1", "gx", "gy"}, 8);
    src += "  out(v0); out(v1); out(gx);\n";
    src += cat("  return ", expr(2, {"v0", "v1"}), ";\n}\n");
    return src;
  }

private:
  std::string pick_var(const std::vector<std::string>& vars) {
    return vars[prng_.next_below(static_cast<std::uint32_t>(vars.size()))];
  }

  std::string expr(int depth, const std::vector<std::string>& vars) {
    if (depth <= 0 || prng_.next_below(4) == 0) {
      switch (prng_.next_below(4)) {
        case 0: return cat(prng_.next_in(-99, 99));
        case 1: return pick_var(vars);
        case 2: return cat("ga[", pick_var(vars), " & 7]");
        default: return cat("gb[", pick_var(vars), " & 3]");
      }
    }
    switch (prng_.next_below(12)) {
      case 0: return cat("(", expr(depth - 1, vars), " + ",
                         expr(depth - 1, vars), ")");
      case 1: return cat("(", expr(depth - 1, vars), " - ",
                         expr(depth - 1, vars), ")");
      case 2: return cat("(", expr(depth - 1, vars), " * ",
                         expr(depth - 1, vars), ")");
      case 3: return cat("(", expr(depth - 1, vars), " / ",
                         expr(depth - 1, vars), ")");  // div-by-0 defined
      case 4: return cat("(", expr(depth - 1, vars), " % ",
                         expr(depth - 1, vars), ")");
      case 5: return cat("(", expr(depth - 1, vars), " ^ ",
                         expr(depth - 1, vars), ")");
      case 6: return cat("(", expr(depth - 1, vars), " >> ",
                         cat(prng_.next_below(8)), ")");
      case 7: return cat("(", expr(depth - 1, vars), " >>> ",
                         cat(prng_.next_below(8)), ")");
      case 8: return cat("(", expr(depth - 1, vars), " < ",
                         expr(depth - 1, vars), " ? ",
                         expr(depth - 1, vars), " : ",
                         expr(depth - 1, vars), ")");
      case 9: return cat("min(", expr(depth - 1, vars), ", ",
                         expr(depth - 1, vars), ")");
      case 10:
        if (callables_ >= 1) {
          return cat("h1(", expr(depth - 1, vars), ", ",
                     expr(depth - 1, vars), ")");
        }
        return cat("abs(", expr(depth - 1, vars), ")");
      default:
        if (callables_ >= 2) {
          return cat("h2(", expr(depth - 1, vars), ")");
        }
        return cat("(", expr(depth - 1, vars), " & ",
                   expr(depth - 1, vars), ")");
    }
  }

  std::string body(int nesting, std::vector<std::string> vars, int stmts) {
    std::string out;
    for (int s = 0; s < stmts; ++s) {
      const std::string indent(static_cast<std::size_t>(2 * (nesting + 1)),
                               ' ');
      switch (prng_.next_below(6)) {
        case 0: {  // new local
          const std::string name = cat("t", nesting, "_", s);
          out += cat(indent, "int ", name, " = ", expr(2, vars), ";\n");
          vars.push_back(name);
          break;
        }
        case 1:  // assignment / compound
          out += cat(indent, pick_var(vars),
                     prng_.next_below(2) ? " = " : " += ", expr(2, vars),
                     ";\n");
          break;
        case 2:  // array store
          out += cat(indent, "ga[", pick_var(vars), " & 7] = ",
                     expr(2, vars), ";\n");
          break;
        case 3:  // if / if-else
          out += cat(indent, "if (", expr(1, vars), " < ", expr(1, vars),
                     ") { ", pick_var(vars), " += ", expr(1, vars),
                     "; }");
          if (prng_.next_below(2)) {
            out += cat(" else { ", pick_var(vars), " ^= ", expr(1, vars),
                       "; }");
          }
          out += "\n";
          break;
        case 4: {  // bounded loop
          if (nesting >= 2) break;  // cap nesting depth
          const std::string iv = cat("i", nesting, "_", s);
          out += cat(indent, "for (int ", iv, " = 0; ", iv, " < ",
                     prng_.next_in(1, 12), "; ", iv, "++) {\n");
          std::vector<std::string> inner = vars;
          inner.push_back(iv);
          out += body(nesting + 1, inner, 2);
          out += cat(indent, "}\n");
          break;
        }
        default:  // observable output
          out += cat(indent, "out(", expr(2, vars), ");\n");
          break;
      }
    }
    return out;
  }

  Prng prng_;
  int callables_ = 0;
};

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeeds, AllExecutionsAgree) {
  ProgramGen gen(GetParam() * 0x9E3779B9u + 12345);
  const std::string src = gen.generate();

  ir::Module golden_module = minic::compile_to_ir(src);
  ir::InterpResult golden;
  try {
    golden = ir::Interpreter(golden_module).run();
  } catch (const SimError&) {
    GTEST_SKIP() << "generated program trapped (e.g. runaway recursion)";
  }

  // EPIC across three customisations.
  for (unsigned alus : {1u, 4u}) {
    ProcessorConfig cfg;
    cfg.num_alus = alus;
    cfg.issue_width = alus == 1 ? 2 : 4;
    EpicSimulator sim = pipeline::run_once(src, cfg);
    ASSERT_EQ(sim.output(), golden.output)
        << "EPIC " << alus << " ALUs\n" << src;
    ASSERT_EQ(sim.gpr(3), golden.ret) << src;
  }
  {
    ProcessorConfig cfg;  // deep pipeline + small register file
    cfg.pipeline_stages = 3;
    cfg.num_gprs = 24;
    EpicSimulator sim = pipeline::run_once(src, cfg);
    ASSERT_EQ(sim.output(), golden.output) << "EPIC deep/small\n" << src;
  }

  // SARM baseline.
  auto sarm_sim = sarm::run_minic_on_sarm(src);
  ASSERT_EQ(sarm_sim.output(), golden.output) << "SARM\n" << src;
  ASSERT_EQ(sarm_sim.reg(0), golden.ret) << src;

  // Unoptimised EPIC (exercises the naive code paths).
  pipeline::CodegenOptions no_opt;
  no_opt.optimize = false;
  EpicSimulator raw = pipeline::run_once(src, ProcessorConfig{},
                                                no_opt);
  ASSERT_EQ(raw.output(), golden.output) << "EPIC unoptimised\n" << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace cepic
