#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/arena.hpp"
#include "support/bits.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace cepic {
namespace {

TEST(Bits, Mask64) {
  EXPECT_EQ(mask64(0), 0u);
  EXPECT_EQ(mask64(1), 1u);
  EXPECT_EQ(mask64(16), 0xFFFFu);
  EXPECT_EQ(mask64(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(mask64(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractInsertRoundtrip) {
  std::uint64_t w = 0;
  w = insert_bits(w, 0, 5, 0x1F);
  w = insert_bits(w, 5, 16, 0xABCD);
  w = insert_bits(w, 21, 16, 0x1234);
  EXPECT_EQ(extract_bits(w, 0, 5), 0x1Fu);
  EXPECT_EQ(extract_bits(w, 5, 16), 0xABCDu);
  EXPECT_EQ(extract_bits(w, 21, 16), 0x1234u);
}

TEST(Bits, InsertRejectsOverflow) {
  EXPECT_THROW(insert_bits(0, 0, 4, 16), InternalError);
}

TEST(Bits, InsertReplacesExisting) {
  std::uint64_t w = insert_bits(~std::uint64_t{0}, 8, 8, 0x00);
  EXPECT_EQ(extract_bits(w, 8, 8), 0u);
  EXPECT_EQ(extract_bits(w, 0, 8), 0xFFu);
  EXPECT_EQ(extract_bits(w, 16, 8), 0xFFu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0x0, 1), 0);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(32767, 16));
  EXPECT_FALSE(fits_signed(32768, 16));
  EXPECT_TRUE(fits_signed(-32768, 16));
  EXPECT_FALSE(fits_signed(-32769, 16));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
}

TEST(Bits, IndexBits) {
  EXPECT_EQ(index_bits(2), 1u);
  EXPECT_EQ(index_bits(16), 4u);
  EXPECT_EQ(index_bits(17), 5u);
  EXPECT_EQ(index_bits(64), 6u);
  EXPECT_EQ(index_bits(65), 7u);
}

TEST(Bits, Rotr32) {
  EXPECT_EQ(rotr32(0x80000001u, 1), 0xC0000000u);
  EXPECT_EQ(rotr32(0x12345678u, 0), 0x12345678u);
  EXPECT_EQ(rotr32(0x12345678u, 32), 0x12345678u);
}

TEST(Prng, Deterministic) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, BoundedDraws) {
  Prng p(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = p.next_below(17);
    EXPECT_LT(v, 17u);
    const auto w = p.next_in(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
  }
}

TEST(Prng, Xorshift32MatchesKnownSequence) {
  // First values of xorshift32 from seed 1 (used by MiniC workloads).
  std::uint32_t s = 1;
  s = xorshift32(s);
  EXPECT_EQ(s, 270369u);
  s = xorshift32(s);
  EXPECT_EQ(s, 67634689u);
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Text, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Text, SplitWs) {
  const auto parts = split_ws("  add   r1, r2 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "add");
  EXPECT_EQ(parts[1], "r1,");
  EXPECT_EQ(parts[2], "r2");
}

TEST(Text, ParseIntDecimal) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("-45", v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(parse_int("+7", v));
  EXPECT_EQ(v, 7);
}

TEST(Text, ParseIntHex) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("0xFF", v));
  EXPECT_EQ(v, 255);
  EXPECT_TRUE(parse_int("0x1234abcd", v));
  EXPECT_EQ(v, 0x1234ABCD);
  EXPECT_TRUE(parse_int("-0x10", v));
  EXPECT_EQ(v, -16);
}

TEST(Text, ParseIntRejectsGarbage) {
  std::int64_t v = 0;
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("0x", v));
  EXPECT_FALSE(parse_int("-", v));
  EXPECT_FALSE(parse_int("abc", v));
}

TEST(Text, CatAndPad) {
  EXPECT_EQ(cat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Arena, AlignmentAndAccounting) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  char* c = arena.alloc_array<char>(3);
  auto* d = arena.alloc_array<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(std::uint64_t), 0u);
  c[0] = 'x';
  d[0] = 42;
  EXPECT_GE(arena.bytes_used(), 3 + 2 * sizeof(std::uint64_t));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, ZeroedAllocation) {
  Arena arena;
  auto* w = arena.alloc_zeroed<std::uint64_t>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(w[i], 0u);
}

TEST(Arena, GrowsPastOneChunkAndKeepsAllocationsValid) {
  Arena arena;
  // Force several chunk transitions; every allocation must remain
  // writable and disjoint (spot-checked via a fill pattern).
  std::vector<char*> blocks;
  constexpr std::size_t kBlock = Arena::kMinChunk / 2 + 17;
  for (int i = 0; i < 16; ++i) {
    char* p = arena.alloc_array<char>(kBlock);
    std::memset(p, i + 1, kBlock);
    blocks.push_back(p);
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(blocks[i][0], i + 1);
    EXPECT_EQ(blocks[i][kBlock - 1], i + 1);
  }
  EXPECT_GE(arena.bytes_used(), 16 * kBlock);
}

TEST(Arena, ResetReusesMemoryWithoutReleasingIt) {
  Arena arena;
  (void)arena.alloc_array<char>(Arena::kMinChunk * 3);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t peak = arena.bytes_peak();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // chunks are recycled
  EXPECT_EQ(arena.bytes_peak(), peak);          // peak survives reset
  (void)arena.alloc_array<char>(Arena::kMinChunk * 3);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new chunk needed
}

TEST(Arena, ScopeRewindsToWatermark) {
  Arena arena;
  auto* outer = arena.alloc_zeroed<std::uint64_t>(4);
  const std::size_t before = arena.bytes_used();
  {
    ArenaScope scope(arena);
    EXPECT_EQ(&scope.arena(), &arena);
    (void)scope.arena().alloc_array<char>(Arena::kMinChunk * 2);
    EXPECT_GT(arena.bytes_used(), before);
  }
  EXPECT_EQ(arena.bytes_used(), before);
  // Outer allocations are untouched by the rewind, and the next
  // allocation reuses the reclaimed space rather than growing.
  outer[0] = 7;
  const std::size_t reserved = arena.bytes_reserved();
  (void)arena.alloc_array<char>(Arena::kMinChunk / 2);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(outer[0], 7u);
}

TEST(Arena, NestedScopesUnwindLikeStackFrames) {
  Arena& arena = Arena::scratch();
  ArenaScope a(arena);
  const std::size_t base = arena.bytes_used();
  (void)a.arena().alloc_array<int>(10);
  {
    ArenaScope b(arena);
    (void)b.arena().alloc_array<int>(1000);
    {
      ArenaScope c(arena);
      (void)c.arena().alloc_array<int>(100000);
    }
    EXPECT_GE(arena.bytes_used(), base + 10 * sizeof(int) + 1000 * sizeof(int));
  }
  EXPECT_GE(arena.bytes_used(), base + 10 * sizeof(int));
  EXPECT_LT(arena.bytes_used(), base + 2000 * sizeof(int));
}

}  // namespace
}  // namespace cepic
