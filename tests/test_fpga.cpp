// FPGA model tests: calibration against the paper's §5.1 figures and
// the trends the paper reports.
#include <gtest/gtest.h>

#include "fpga/model.hpp"

namespace cepic::fpga {
namespace {

ResourceEstimate with_alus(unsigned n) {
  ProcessorConfig cfg;
  cfg.num_alus = n;
  return estimate(cfg);
}

TEST(FpgaModel, CalibratedToPaperSliceCounts) {
  // Paper §5.1: 1/2/3 ALUs -> 4181/6779/9367 slices (the 4-ALU figure
  // did not survive the text extraction; the per-ALU delta gives
  // ~11960). Model must be within 2%.
  const double expected[] = {4181, 6779, 9367, 11955};
  for (unsigned n = 1; n <= 4; ++n) {
    const double got = with_alus(n).slices;
    EXPECT_NEAR(got, expected[n - 1], expected[n - 1] * 0.02)
        << n << " ALUs";
  }
}

TEST(FpgaModel, PerAluCostNearPaper) {
  // "each individual ALU occupies around 2600 slices".
  const double delta = with_alus(4).slices - with_alus(3).slices;
  EXPECT_NEAR(delta, 2600.0, 100.0);
}

TEST(FpgaModel, ClockIndependentOfAluCount) {
  // "varying the number of ALUs has little impact on the critical path".
  EXPECT_DOUBLE_EQ(with_alus(1).fmax_mhz, with_alus(4).fmax_mhz);
  EXPECT_NEAR(with_alus(4).fmax_mhz, 41.8, 0.01);
}

TEST(FpgaModel, RegisterFileGrowsBramNotSlices) {
  // "increasing the size of register file has negligible effects on
  // number of slices taken up".
  ProcessorConfig small;
  small.num_gprs = 32;
  ProcessorConfig big;
  big.num_gprs = 64;
  big.num_preds = 32;
  const auto a = estimate(small);
  const auto b = estimate(big);
  EXPECT_DOUBLE_EQ(a.slices, b.slices);
  EXPECT_LE(a.block_rams, b.block_rams);

  ProcessorConfig wide;  // 64 GPRs x 32 bits = 2048 bits -> 1 block/bank
  wide.num_gprs = 64;
  wide.datapath_width = 32;
  EXPECT_GE(estimate(wide).block_rams, 3u);
}

TEST(FpgaModel, MultiplierUsesBlockMults) {
  // "Multiplication is supported by on-chip block multiplier."
  ProcessorConfig cfg;
  EXPECT_EQ(estimate(cfg).block_mults, 3u * cfg.num_alus);
  cfg.alu.has_mul = false;
  EXPECT_EQ(estimate(cfg).block_mults, 0u);
}

TEST(FpgaModel, FeatureTrimsShrinkAlus) {
  ProcessorConfig full;
  ProcessorConfig no_div = full;
  no_div.alu.has_div = false;
  ProcessorConfig lean = no_div;
  lean.alu.has_shift = false;
  lean.alu.has_minmax = false;
  const double full_alu = estimate(full).slices_per_alu;
  const double no_div_alu = estimate(no_div).slices_per_alu;
  const double lean_alu = estimate(lean).slices_per_alu;
  EXPECT_LT(no_div_alu, full_alu);
  EXPECT_LT(lean_alu, no_div_alu);
  // Dropping the divider saves ~900 slices per ALU.
  EXPECT_NEAR(full_alu - no_div_alu, 935.0, 1.0);
}

TEST(FpgaModel, CustomOpsCostSlicesPerAlu) {
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  const CustomOpTable table = CustomOpTable::for_names(cfg.custom_ops);
  const double with_custom = estimate(cfg, &table).slices;
  const double without = estimate(ProcessorConfig{}).slices;
  EXPECT_NEAR(with_custom - without, 96.0 * cfg.num_alus, 1.0);

  cfg.custom_ops = {"madd16"};
  const CustomOpTable t2 = CustomOpTable::for_names(cfg.custom_ops);
  EXPECT_EQ(estimate(cfg, &t2).block_mults, (3u + 2u) * cfg.num_alus);
}

TEST(FpgaModel, NarrowDatapathIsSmallerAndFaster) {
  ProcessorConfig narrow;
  narrow.datapath_width = 16;
  const auto n = estimate(narrow);
  const auto w = estimate(ProcessorConfig{});
  EXPECT_LT(n.slices, w.slices);
  EXPECT_GT(n.fmax_mhz, w.fmax_mhz);

  ProcessorConfig wide;
  wide.datapath_width = 64;
  EXPECT_LT(estimate(wide).fmax_mhz, w.fmax_mhz);
}

TEST(FpgaModel, IssueWidthCostsFetchLogic) {
  ProcessorConfig narrow;
  narrow.issue_width = 1;
  EXPECT_LT(estimate(narrow).slices, estimate(ProcessorConfig{}).slices);
}

TEST(FpgaModel, ReportMentionsEverything) {
  const std::string r = estimate(ProcessorConfig{}).report();
  EXPECT_NE(r.find("slices"), std::string::npos);
  EXPECT_NE(r.find("block RAMs"), std::string::npos);
  EXPECT_NE(r.find("41.8 MHz"), std::string::npos);
}

}  // namespace
}  // namespace cepic::fpga
