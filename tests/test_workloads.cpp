// Workload validation: the native references against published test
// vectors (NIST SHA-256, FIPS-197 AES), the MiniC programs against the
// native golden streams on the IR interpreter, and a reduced-size pass
// through both cycle simulators.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "sarm/driver.hpp"
#include "frontend/irgen.hpp"
#include "ir/interp.hpp"
#include "support/prng.hpp"
#include "workloads/workloads.hpp"

namespace cepic::workloads {
namespace {

std::vector<std::uint32_t> interp_run(const std::string& src) {
  ir::Module m = minic::compile_to_ir(src);
  ir::InterpOptions opts;
  opts.max_steps = 2'000'000'000;
  return ir::Interpreter(m, opts).run().output;
}

// ---- native reference vs published vectors ----

TEST(GoldenSha, NistVectorAbc) {
  // FIPS-180 test vector: SHA-256("abc").
  const std::vector<std::uint8_t> abc = {'a', 'b', 'c'};
  EXPECT_EQ(sha256_reference(abc),
            (std::vector<std::uint32_t>{0xba7816bf, 0x8f01cfea, 0x414140de,
                                        0x5dae2223, 0xb00361a3, 0x96177a9c,
                                        0xb410ff61, 0xf20015ad}));
}

TEST(GoldenSha, NistVectorEmpty) {
  EXPECT_EQ(sha256_reference({}),
            (std::vector<std::uint32_t>{0xe3b0c442, 0x98fc1c14, 0x9afbf4c8,
                                        0x996fb924, 0x27ae41e4, 0x649b934c,
                                        0xa495991b, 0x7852b855}));
}

TEST(GoldenSha, NistVectorTwoBlocks) {
  const char* s = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const std::vector<std::uint8_t> m(s, s + 56);
  EXPECT_EQ(sha256_reference(m),
            (std::vector<std::uint32_t>{0x248d6a61, 0xd20638b8, 0xe5c02693,
                                        0x0c3e6039, 0xa33ce459, 0x64ff2167,
                                        0xf6ecedd4, 0x19db06c1}));
}

TEST(GoldenAes, Fips197Vector) {
  // FIPS-197 Appendix C.1.
  std::vector<std::uint8_t> key(16), pt(16);
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  const std::vector<std::uint8_t> expected = {
      0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
      0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(aes128_encrypt_block(key, pt), expected);
  EXPECT_EQ(aes128_decrypt_block(key, expected), pt);
}

TEST(GoldenAes, EncryptDecryptRoundtripRandom) {
  std::vector<std::uint8_t> key = synthetic_bytes(16);
  std::vector<std::uint8_t> block = synthetic_bytes(32);
  block.erase(block.begin(), block.begin() + 16);
  EXPECT_EQ(aes128_decrypt_block(key, aes128_encrypt_block(key, block)),
            block);
}

TEST(GoldenDct, ReconstructionErrorIsSmall) {
  // The fixed-point pipeline must reconstruct within a tight bound of
  // the original pixels (validated via the reported total error).
  const Workload w = make_dct(16);
  const std::uint32_t total_err = w.expected_output[2];
  // 16x16 = 256 pixels; allow an average error well under 1 LSB.
  EXPECT_LT(total_err, 256u);
}

TEST(GoldenDct, DcCoefficientMatchesMean) {
  // For a constant block the DC term dominates and reconstruction is
  // exact: feed a constant image through the table-driven roundtrip by
  // checking total error reported for a constant variant.
  const int* t = dct_coeff_table();
  // Table sanity: row 0 is the constant basis (256 each).
  for (int x = 0; x < 8; ++x) EXPECT_EQ(t[x], 256);
  // Rows have (near) zero sum for u odd.
  for (int u = 1; u < 8; u += 2) {
    int sum = 0;
    for (int x = 0; x < 8; ++x) sum += t[u * 8 + x];
    EXPECT_LE(std::abs(sum), 4) << "row " << u;
  }
}

TEST(GoldenDijkstra, MatchesFloydWarshall) {
  // Independent check of the golden checksum via Floyd-Warshall.
  const int n = 12;
  const Workload w = make_dijkstra(n);

  // Rebuild the same graph.
  std::vector<int> adj(n * n, 0);
  std::uint32_t s = 2;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      s = xorshift32(s);
      const std::uint32_t r = s >> 16;
      adj[i * n + j] = (r % 4) == 0 ? 0 : 1 + static_cast<int>(r % 99);
    }
  }
  const int inf = 1000000;
  std::vector<int> d(n * n, inf);
  for (int i = 0; i < n; ++i) d[i * n + i] = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (adj[i * n + j] != 0) d[i * n + j] = adj[i * n + j];
    }
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (d[i * n + k] + d[k * n + j] < d[i * n + j]) {
          d[i * n + j] = d[i * n + k] + d[k * n + j];
        }
      }
    }
  }
  std::uint32_t cks = 0;
  for (int src = 0; src < n; ++src) {
    int sum = 0;
    for (int j = 0; j < n; ++j) {
      if (d[src * n + j] < inf) sum += d[src * n + j];
    }
    cks = cks * 31 + static_cast<std::uint32_t>(sum);
  }
  EXPECT_EQ(w.expected_output[0], cks);
}

// ---- MiniC programs vs golden, on the interpreter (fast) ----

TEST(WorkloadInterp, ShaMatchesGolden) {
  const Workload w = make_sha(16);
  EXPECT_EQ(interp_run(w.minic_source), w.expected_output);
}

TEST(WorkloadInterp, AesMatchesGolden) {
  const Workload w = make_aes(4);
  EXPECT_EQ(interp_run(w.minic_source), w.expected_output);
}

TEST(WorkloadInterp, DctMatchesGolden) {
  const Workload w = make_dct(16);
  EXPECT_EQ(interp_run(w.minic_source), w.expected_output);
}

TEST(WorkloadInterp, DijkstraMatchesGolden) {
  const Workload w = make_dijkstra(12);
  EXPECT_EQ(interp_run(w.minic_source), w.expected_output);
}

// ---- full pipeline: both simulators, reduced sizes ----

class WorkloadSim : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSim, EpicAndSarmMatchGolden) {
  const auto workloads = all_workloads(8, 2, 8, 8);
  const Workload& w = workloads[GetParam()];

  ProcessorConfig cfg;
  auto epic = pipeline::run_once(w.minic_source, cfg);
  EXPECT_EQ(epic.output(), w.expected_output) << w.name << " on EPIC";

  auto sarm_sim = sarm::run_minic_on_sarm(w.minic_source);
  EXPECT_EQ(sarm_sim.output(), w.expected_output) << w.name << " on SARM";
}

std::string workload_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"sha", "aes", "dct", "dijkstra"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSim, ::testing::Values(0, 1, 2, 3),
                         workload_name);

TEST(WorkloadSim, EpicOneAluAlsoCorrect) {
  const Workload w = make_dct(8);
  ProcessorConfig cfg;
  cfg.num_alus = 1;
  cfg.issue_width = 1;
  auto epic = pipeline::run_once(w.minic_source, cfg);
  EXPECT_EQ(epic.output(), w.expected_output);
}

}  // namespace
}  // namespace cepic::workloads
