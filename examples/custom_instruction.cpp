// Custom instructions (paper §3.3): bind a new operation to a CUSTOM
// opcode slot through the configuration — no tool is recompiled — and
// measure the performance/area trade on a SHA-style rotation kernel.
//
// Also shows installing a user-defined semantic (not just the built-in
// library): a byte-swap custom op defined right here.
//
//   $ ./build/examples/custom_instruction
#include <iostream>

#include "asmtool/assembler.hpp"
#include "fpga/model.hpp"
#include "frontend/irgen.hpp"
#include "opt/custom_candidates.hpp"
#include "opt/opt.hpp"
#include "sim/simulator.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace {

std::string kernel(bool use_custom, int iters) {
  using cepic::cat;
  std::string s;
  s += ".entry main\nmain:\n";
  s += cat("mov r10, #", iters, " ;;\n");
  s += "mov r11, #0x7A5 ;;\n";
  s += "pbr b1, @loop ;;\n";
  s += "loop:\n";
  for (int amount : {6, 11, 25}) {  // SHA-256 Sigma1 rotations
    if (use_custom) {
      s += cat("custom0 r12, r11, #", amount, " ;;\n");
    } else {
      s += cat("shrl r12, r11, #", amount, " ;;\n");
      s += cat("shl r13, r11, #", 32 - amount, " ;;\n");
      s += "or r12, r12, r13 ;;\n";
    }
    s += "xor r11, r11, r12 ;;\n";
  }
  s += "sub r10, r10, #1 ;;\n";
  s += "cmpp.gt p1, p0, r10, #0 ;;\n";
  s += "brct b1, p1 ;;\n";
  s += "out r11 ;; halt ;;\n";
  return s;
}

}  // namespace

int main() {
  using namespace cepic;

  // --- baseline: rotation composed from shifts ---
  ProcessorConfig base_cfg;
  EpicSimulator base(asmtool::assemble(kernel(false, 2000), base_cfg));
  base.run();

  // --- customised core: `rotr` bound to CUSTOM0 via the config ---
  ProcessorConfig cfg;
  cfg.custom_ops = {"rotr"};
  EpicSimulator custom(asmtool::assemble(kernel(true, 2000), cfg),
                       CustomOpTable::for_names(cfg.custom_ops));
  custom.run();

  std::cout << "rotation kernel, 2000 iterations:\n";
  std::cout << "  composed (shrl/shl/or): " << base.stats().cycles
            << " cycles\n";
  std::cout << "  custom rotr:            " << custom.stats().cycles
            << " cycles ("
            << fixed(static_cast<double>(base.stats().cycles) /
                         static_cast<double>(custom.stats().cycles),
                     2)
            << "x)\n";
  std::cout << "  results match: "
            << (base.output() == custom.output() ? "yes" : "NO") << "\n";

  const CustomOpTable table = CustomOpTable::for_names(cfg.custom_ops);
  const double delta =
      fpga::estimate(cfg, &table).slices - fpga::estimate(base_cfg).slices;
  std::cout << "  area cost: +" << fixed(delta, 0) << " slices across "
            << cfg.num_alus << " ALUs\n";

  // --- a user-defined custom op: byte swap ---
  CustomOpTable mine;
  CustomOp bswap;
  bswap.name = "bswap";
  bswap.eval = [](std::uint32_t a, std::uint32_t) {
    return (a << 24) | ((a & 0xFF00u) << 8) | ((a >> 8) & 0xFF00u) |
           (a >> 24);
  };
  bswap.slices_per_alu = 0;  // pure wiring on an FPGA
  mine.install(0, bswap);

  ProcessorConfig bs_cfg;
  bs_cfg.custom_ops = {"bswap"};
  EpicSimulator bs(asmtool::assemble(".entry main\nmain:\n"
                                     "mov r1, #0x1234 ;;\n"
                                     "custom0 r2, r1, #0 ;;\n"
                                     "out r2 ;; halt ;;\n",
                                     bs_cfg),
                   mine);
  bs.run();
  std::cout << "\nuser-defined bswap(0x1234) = 0x" << std::hex
            << bs.output().at(0) << std::dec << "\n";

  // --- automatic candidate discovery (paper §6 future work) ---
  // Let the toolchain itself propose custom instructions by mining the
  // optimised IR of the SHA-256 workload.
  std::cout << "\n--- automatic custom-instruction discovery on SHA-256 "
               "---\n";
  ir::Module sha = minic::compile_to_ir(
      workloads::make_sha(16).minic_source);
  opt::optimize(sha);
  std::cout << opt::format_candidates(
      opt::find_custom_candidates(sha, 5));
  return 0;
}
