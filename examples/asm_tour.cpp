// Assembly tour: the configuration-driven assembler of paper §4.2.
// Hand-written EPIC assembly with explicit MultiOps, predication and
// prepared branches; assembled twice for different customisations from
// *configuration text alone* (no recompilation), executed with a cycle
// trace, disassembled, and shipped through the CEPX binary container.
//
//   $ ./build/examples/asm_tour
#include <iostream>

#include "serial/serial.hpp"
#include "asmtool/assembler.hpp"
#include "sim/simulator.hpp"
#include "support/text.hpp"

int main() {
  using namespace cepic;

  // Sum the elements of `table` larger than a threshold — with the
  // compare, guarded accumulate and loop bookkeeping packed into wide
  // MultiOps by hand.
  const char* source = R"(
    .data
    .global table 8 = 3 14 1 59 26 5 35 9
    .global threshold 1 = 10

    .text
    .entry main
    main:
      mov r10, @table ; mov r12, #0 ; mov r13, #8 ;;   // base, sum, count
      mov r14, @threshold ;;
      ldw r15, r14, #0 ;;                               // threshold value
      pbr b1, @loop ;;
    loop:
      ldw r16, r10, #0 ; add r10, r10, #4 ; sub r13, r13, #1 ;;
      cmpp.gt p1, p2, r16, r15 ;;                       // dual-target compare
      (p1) add r12, r12, r16 ; cmpp.gt p3, p0, r13, #0 ;;
      brct b1, p3 ;;
      out r12 ;;
      halt ;;
  )";

  std::cout << "--- assembling for the default 4-issue core ---\n";
  const Program wide = asmtool::assemble_with_config_text(source, "");
  SimOptions opts;
  opts.collect_trace = true;
  EpicSimulator sim(wide, {}, opts);
  sim.run();
  std::cout << "sum of elements > threshold: " << sim.output().at(0)
            << " (expect 134)\n";
  std::cout << "cycles: " << sim.stats().cycles << "\n";

  std::cout << "\n--- first 10 trace entries ---\n";
  for (std::size_t i = 0; i < sim.trace().size() && i < 10; ++i) {
    const TraceEntry& t = sim.trace()[i];
    std::cout << "cycle " << pad_left(cat(t.cycle), 3) << "  bundle "
              << pad_left(cat(t.bundle), 2) << "  " << t.text << "\n";
  }

  std::cout << "\n--- retarget to a single-issue core (config text only, "
               "paper §4.2) ---\n";
  try {
    asmtool::assemble_with_config_text(source, "issue_width = 1\n");
    std::cout << "unexpected: wide MultiOps accepted on a 1-issue core\n";
  } catch (const AsmError& e) {
    std::cout << "assembler (correctly) rejects the wide MultiOps:\n  "
              << e.what() << "\n";
  }

  std::cout << "\n--- disassembly round trip ---\n";
  const std::string listing = asmtool::disassemble(wide);
  int lines = 0;
  for (std::string_view line : split(listing, '\n')) {
    if (lines++ >= 12) break;
    std::cout << line << "\n";
  }
  const Program again = asmtool::assemble(listing, wide.config);
  std::cout << "reassembled bit-identical: "
            << (again.encode_code() == wide.encode_code() ? "yes" : "NO")
            << "\n";

  std::cout << "\n--- CEPX binary container ---\n";
  const std::vector<std::uint8_t> bytes = serial::encode_program(wide);
  const Program loaded = serial::decode_program(bytes);
  std::cout << "serialised " << bytes.size() << " bytes; reload matches: "
            << (loaded.encode_code() == wide.encode_code() ? "yes" : "NO")
            << "\n";
  return 0;
}
