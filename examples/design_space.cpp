// Design-space exploration — the paper's core use case: "Such
// customisable designs provide a platform for designers to explore
// performance/area trade-offs for a specific application."
//
// Sweeps EPIC customisations (ALU count, issue width, divider on/off)
// over the DCT workload, and prints cycles, area, wall-clock time at the
// modelled fmax, and an area-delay product so the Pareto points stand
// out.
//
//   $ ./build/examples/design_space
#include <iostream>

#include "pipeline/pipeline.hpp"
#include "fpga/model.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace cepic;

  const workloads::Workload w = workloads::make_dct(16);

  struct Point {
    const char* name;
    ProcessorConfig config;
  };
  std::vector<Point> points;
  for (unsigned alus : {1u, 2u, 4u}) {
    for (unsigned issue : {2u, 4u}) {
      if (issue < alus) continue;
      ProcessorConfig cfg;
      cfg.num_alus = alus;
      cfg.issue_width = issue;
      points.push_back({"", cfg});
    }
  }
  // A trimmed core: DCT needs no divider.
  ProcessorConfig trimmed;
  trimmed.num_alus = 4;
  trimmed.alu.has_div = false;
  points.push_back({"", trimmed});

  std::cout << "=== design-space exploration: 16x16 DCT ===\n\n";
  std::cout << pad_right("configuration", 26) << pad_left("cycles", 10)
            << pad_left("slices", 9) << pad_left("fmax", 9)
            << pad_left("time(ms)", 10) << pad_left("slice*ms", 11)
            << pad_left("power", 9) << "\n";

  for (const Point& p : points) {
    const ProcessorConfig& cfg = p.config;
    EpicSimulator sim = pipeline::run_once(w.minic_source, cfg);
    if (sim.output() != w.expected_output) {
      std::cout << "!! output mismatch\n";
      continue;
    }
    const auto area = fpga::estimate(cfg);
    const double ms =
        static_cast<double>(sim.stats().cycles) / (area.fmax_mhz * 1e3);
    const std::string name =
        cat(cfg.num_alus, " ALU, issue ", cfg.issue_width,
            cfg.alu.has_div ? "" : ", no div");
    std::cout << pad_right(name, 26) << pad_left(cat(sim.stats().cycles), 10)
              << pad_left(fixed(area.slices, 0), 9)
              << pad_left(fixed(area.fmax_mhz, 1), 9)
              << pad_left(fixed(ms, 3), 10)
              << pad_left(fixed(area.slices * ms / 1000.0, 2), 11)
              << pad_left(cat(fixed(fpga::estimate_power(area).total(), 0),
                              " mW"), 9)
              << "\n";
  }

  std::cout << "\nReading the table: more ALUs buy cycles until the "
               "benchmark's ILP is exhausted; dropping the unused divider "
               "is area for free (paper §3.3).\n";
  return 0;
}
