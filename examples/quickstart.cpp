// Quickstart: compile a MiniC program for a customised EPIC processor,
// inspect the generated assembly, run it on the cycle-level simulator,
// and read the results — the whole tool flow of the paper in ~40 lines.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "pipeline/pipeline.hpp"
#include "support/text.hpp"

int main() {
  using namespace cepic;

  // A small program: dot product plus a reduction, with output.
  const char* source = R"(
    int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int b[8] = {8, 7, 6, 5, 4, 3, 2, 1};

    int dot(int x[], int y[], int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) acc += x[i] * y[i];
      return acc;
    }

    int main() {
      out(dot(a, b, 8));
      int fold = 0;
      for (int i = 0; i < 8; i++) fold = fold * 31 + a[i];
      out(fold);
      return 0;
    }
  )";

  // Customise the processor: 2 ALUs, dual-issue — a small core.
  ProcessorConfig config;
  config.num_alus = 2;
  config.issue_width = 2;

  // Compile: MiniC -> IR -> optimiser -> EPIC backend -> assembler.
  const pipeline::CompileArtifacts compiled =
      pipeline::compile_once(source, config);

  std::cout << "--- generated assembly (first 24 lines) ---\n";
  int shown = 0;
  for (std::string_view line : split(compiled.asm_text, '\n')) {
    if (shown++ >= 24) break;
    std::cout << line << "\n";
  }

  // Run on the cycle-level simulator.
  EpicSimulator sim(compiled.program);
  sim.run();

  std::cout << "\n--- execution ---\n";
  std::cout << "dot product: " << sim.output().at(0) << "\n";
  std::cout << "fold:        " << sim.output().at(1) << "\n";
  std::cout << "\n--- cycle statistics ---\n" << sim.stats().report();
  return 0;
}
